"""BLCR restart path.

``cr_restart`` reads a context through a descriptor and rebuilds the process
on a target OS: it re-maps every memory region (which can legitimately fail
with :class:`~repro.hw.memory.MemoryExhausted` — restoring a big process
onto a loaded card is exactly the hazard the paper describes), restores the
store, replays every checkpoint plugin's ``post_restart`` hook (sockets,
RAM-FS files, signal state, RDMA windows), and restarts the main program
with ``_blcr_restored`` set so resumable programs take their restart branch.

``cr_restore_context`` is the same rebuild from an in-memory context (the
memory-tier hit path): no descriptor reads, but the per-record CPU cost and
the kernel page-walk over the image bytes are still charged. Both paths
share :func:`_rebuild_process`.
"""

from __future__ import annotations

import copy
from typing import Optional

from ..osim.fd import FileDescriptor
from ..osim.process import OSInstance, SimProcess
from .checkpoint import BLCRError, page_walk_cost
from .context import BULK_CHUNK, RECORD_CPU_COST, SMALL_RECORD, ProcessContext
from .plugins import PluginRegistry

#: Fallback metadata-scan bound when the descriptor's extent is unknowable
#: (e.g. a pipe). 64 Ki records = 16 MiB of metadata — far beyond any
#: context this simulator produces, but finite: a descriptor that never
#: yields a header fails with a diagnostic instead of spinning.
DEFAULT_METADATA_SCAN_LIMIT = 65_536


def _metadata_scan_limit(fd: FileDescriptor) -> int:
    """Upper bound on metadata records the header scan may read.

    Derived from the descriptor itself: a file-backed descriptor cannot hold
    more records than its file size; a record-stream descriptor no more than
    its queued records. Only when neither extent is visible does the
    :data:`DEFAULT_METADATA_SCAN_LIMIT` fallback apply.
    """
    fs = getattr(fd, "fs", None)
    path = getattr(fd, "path", None)
    if fs is not None and path is not None and fs.exists(path):
        return max(1, fs.stat(path).size // SMALL_RECORD + 1)
    records = getattr(fd, "_records", None)
    if records is not None:
        return max(1, len(records))
    return DEFAULT_METADATA_SCAN_LIMIT


def _rebuild_process(
    os: OSInstance,
    ctx: ProcessContext,
    name: Optional[str],
    fd: Optional[FileDescriptor] = None,
):
    """Sub-generator: the shared rebuild behind both restart paths.

    Spawns the process shell, streams in the bulk payload (region pages,
    then plugin bulk, mirroring ``write_plan``'s layout; ``fd`` is None on
    the in-memory path where only the page-walk cost is charged), restores
    the store, and runs every plugin image's ``post_restart`` hook. Region
    data and the store are DEEP-COPIED out of the context: a snapshot may be
    restored from many times (repeated failures), and restored processes
    must never share mutable state with the context or with each other.
    """
    sim = os.sim
    per_byte = page_walk_cost(os)
    proc = yield from os.spawn_process(
        name or ctx.name, image_size=0, main_factory=ctx.main_factory, start=False
    )
    try:
        for region in ctx.regions:
            proc.map_region(
                region.name, region.size, kind=region.kind,
                data=copy.deepcopy(region.data), pinned=region.pinned,
            )
            remaining = region.size
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                yield sim.timeout(per_byte * chunk)
                if fd is not None:
                    yield from fd.read(chunk)
                remaining -= chunk

        proc.store.update(copy.deepcopy(ctx.store))
        proc.store["_blcr_restored"] = True

        # Plugin images: drain each one's bulk bytes, then hand it to the
        # target OS's registered plugin to rebuild the resource. A typed
        # PluginError here (unreconnectable socket, RDMA cross-migrate) is a
        # loud failure, not silent corruption — the half-built process is
        # torn down like any other failed restore.
        registry = PluginRegistry.of(os)
        for image in ctx.plugin_images:
            remaining = image.bulk_bytes
            while remaining > 0:
                chunk = min(remaining, BULK_CHUNK)
                yield sim.timeout(per_byte * chunk)
                if fd is not None:
                    yield from fd.read(chunk)
                remaining -= chunk
            plugin = registry.get(image.plugin)
            hook = plugin.post_restart(proc, image, os)
            if hook is not None:
                yield from hook
    except Exception:
        # Failed restore must not leak the half-built process.
        proc.terminate(code=1)
        raise
    return proc


def cr_restart(
    os: OSInstance,
    fd: FileDescriptor,
    name: Optional[str] = None,
    start: bool = True,
):
    """Sub-generator: rebuild a process from the context behind ``fd``.

    Returns the new :class:`SimProcess`. The read pattern mirrors the write
    pattern: a burst of small metadata reads, then bulk page reads.
    """
    sim = os.sim
    ctx: Optional[ProcessContext] = None
    # Metadata burst: read small records until the context header appears,
    # then the remaining per-thread/per-region metadata records. The scan is
    # bounded by the descriptor's own extent — a corrupt or truncated image
    # fails loudly instead of walking an arbitrary record count.
    reads_done = 0
    scan_limit = _metadata_scan_limit(fd)
    while reads_done < scan_limit:
        yield sim.timeout(RECORD_CPU_COST)
        record = yield from fd.read(SMALL_RECORD)
        reads_done += 1
        if isinstance(record, ProcessContext):
            ctx = record
            break
    if ctx is None:
        raise BLCRError(
            f"no process context header in {fd.name!r} after {reads_done} "
            f"metadata record(s) (scan limit {scan_limit}); the image is "
            "truncated or not a BLCR context"
        )
    for _ in range(max(0, ctx.n_small_records - reads_done)):
        yield sim.timeout(RECORD_CPU_COST)
        yield from fd.read(SMALL_RECORD)

    proc = yield from _rebuild_process(os, ctx, name, fd=fd)
    if start:
        proc.start()
    return proc


def cr_restore_context(
    os: OSInstance,
    ctx: ProcessContext,
    name: Optional[str] = None,
    start: bool = True,
):
    """Sub-generator: rebuild a process from an in-memory context.

    The restore path for memory-tier hits: no descriptor reads (the image is
    already resident), but fork+exec, region mapping and the kernel page-walk
    cost over the image bytes are still charged — restoring a big process
    onto a loaded card can still fail with MemoryExhausted.
    """
    sim = os.sim
    for _ in range(ctx.n_small_records):
        yield sim.timeout(RECORD_CPU_COST)

    proc = yield from _rebuild_process(os, ctx, name, fd=None)
    if start:
        proc.start()
    return proc
