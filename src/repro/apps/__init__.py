"""Applications: offload benchmarks and native micro-benchmarks."""

from .native import MallocLoopBenchmark, copy_microbenchmark
from .offload import OffloadApplication, build_binary, expected_checksum
from .openmp import make_app, run_benchmark, suite
from .workloads import (
    NAS_MZ_BENCHMARKS,
    OPENMP_BENCHMARKS,
    OPENMP_NAMES,
    BenchmarkProfile,
    MZProfile,
    mz_rank_footprint,
)

__all__ = [
    "BenchmarkProfile",
    "MZProfile",
    "MallocLoopBenchmark",
    "NAS_MZ_BENCHMARKS",
    "OPENMP_BENCHMARKS",
    "OPENMP_NAMES",
    "OffloadApplication",
    "build_binary",
    "copy_microbenchmark",
    "expected_checksum",
    "make_app",
    "mz_rank_footprint",
    "run_benchmark",
    "suite",
]
