"""The offload application framework.

Builds a runnable, *snapshot-survivable* offload application from a
:class:`~repro.apps.workloads.BenchmarkProfile`:

* the card binary (an ``init`` region that maps the offload-private heap
  and an ``iterate`` region that advances a checksum);
* the host program — an iterative loop keeping all progress in the process
  store, using keyed run-functions so any snapshot/restart yields the same
  final checksum;
* an *application gate* so the transparent ``snapify`` CLI can swap or
  migrate the process between iterations without racing application I/O.

The final checksum is a pure function of the iteration count, so every test
and benchmark can verify end-to-end correctness after arbitrary snapshot
interleavings: ``checksum == expected_checksum(iterations)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from ..coi.engine import COIEngine
from ..coi.pipeline import CardContext, OffloadBinary, OffloadFunction
from ..coi.process import COIProcess
from ..osim.process import SimProcess
from ..sim.sync import Mutex
from ..snapify.cli import install_cli_handler
from .workloads import BenchmarkProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiServer


def expected_checksum(iterations: int) -> int:
    """The checksum a run of ``iterations`` steps must produce."""
    acc = 0
    for i in range(iterations):
        acc = (acc * 31 + i) % 1_000_000_007
    return acc


def _iterate_effect(ctx: CardContext, args: Any) -> int:
    acc = ctx.store.get("acc", 0)
    acc = (acc * 31 + args["i"]) % 1_000_000_007
    ctx.store["acc"] = acc
    return acc


def build_binary(profile: BenchmarkProfile) -> OffloadBinary:
    """The card-side shared library for one benchmark."""

    def init_effect(ctx: CardContext, args: Any) -> str:
        if not ctx.has_region("app_heap"):
            ctx.map_region("app_heap", profile.offload_heap)
        return "ready"

    return OffloadBinary(
        name=f"{profile.name}_mic.so",
        image_size=profile.binary_size,
        functions={
            "init": OffloadFunction("init", duration=20e-3, effect=init_effect),
            "iterate": OffloadFunction(
                "iterate", duration=profile.call_duration, effect=_iterate_effect
            ),
        },
    )


class OffloadApplication:
    """One running offload benchmark on a testbed server."""

    def __init__(
        self,
        server: "XeonPhiServer",
        profile: BenchmarkProfile,
        device: int = 0,
        snapify_enabled: bool = True,
        iterations: Optional[int] = None,
        name: Optional[str] = None,
    ):
        self.server = server
        self.sim = server.sim
        self.profile = profile
        self.device = device
        self.snapify_enabled = snapify_enabled
        self.iterations = iterations if iterations is not None else profile.iterations
        self.name = name or profile.name
        self.binary = build_binary(profile)
        self.host_proc: Optional[SimProcess] = None

    # -- launch -------------------------------------------------------------
    def launch(self):
        """Sub-generator: spawn the host process; returns it. The program
        itself runs on the process's main thread."""
        self.host_proc = yield from self.server.host_os.spawn_process(
            self.name, image_size=16 * 1024 * 1024, main_factory=self._main_factory()
        )
        # The application gate exists from the instant the process does, so
        # external actors (scheduler, CLI, tests) can coordinate immediately.
        self.host_proc.runtime.setdefault("app_gate", Mutex(self.sim, "app_gate"))
        return self.host_proc

    def _main_factory(self):
        app = self

        def main(proc: SimProcess):
            yield from app._program(proc)

        return main

    # -- the host program ------------------------------------------------------
    def _program(self, proc: SimProcess):
        store = proc.store
        gate: Mutex = proc.runtime.setdefault("app_gate", Mutex(self.sim, "app_gate"))
        install_cli_handler(proc)

        if store.get("_blcr_restored"):
            # Fig. 5 restart path: the restore machinery left the new handle
            # in the runtime before (re)starting us.
            coiproc: COIProcess = proc.runtime.pop("coi_restored_handle")
            proc.runtime["coi_handle"] = coiproc
        else:
            store["iter"] = 0
            store["checksum"] = 0
            store["app"] = self.profile.name
            proc.map_region("heap", self.profile.host_heap, kind="heap")
            engine = COIEngine(self.server.node, self.device)
            coiproc = yield from engine.process_create(
                proc, self.binary, snapify_enabled=self.snapify_enabled
            )
            proc.runtime["coi_handle"] = coiproc
            per_buffer = self.profile.local_store // self.profile.n_buffers
            buf_ids: List[int] = []
            for _ in range(self.profile.n_buffers):
                buf = yield from coiproc.buffer_create(per_buffer)
                buf_ids.append(buf.buf_id)
            store["buf_ids"] = buf_ids
            yield from coiproc.run_function_keyed("init", "init")

        buf_ids = store["buf_ids"]
        while store["iter"] < self.iterations:
            i = store["iter"]
            # One iteration under the application gate: the snapify CLI
            # holds this gate across swap/migrate so we never race a dying
            # handle mid-operation.
            yield gate.acquire(owner=f"iter{i}")
            try:
                coiproc = proc.runtime["coi_handle"]
                yield self.sim.timeout(self.profile.host_compute)
                buf = coiproc.buffers[buf_ids[i % len(buf_ids)]]
                yield from coiproc.buffer_write(
                    buf, payload=i, nbytes=min(self.profile.transfer_in, buf.size)
                )
                result = yield from coiproc.run_function_keyed(
                    ("it", i), "iterate", {"i": i, "buf": buf.buf_id}
                )
                yield from coiproc.buffer_read(
                    buf, nbytes=min(self.profile.transfer_out, buf.size)
                )
                store["checksum"] = result
                store["iter"] = i + 1
            finally:
                gate.release()
        store["finished"] = True

    # -- conveniences ------------------------------------------------------------
    @property
    def coiproc(self) -> COIProcess:
        return self.host_proc.runtime["coi_handle"]

    @property
    def finished(self) -> bool:
        return bool(self.host_proc and self.host_proc.store.get("finished"))

    def verify(self) -> bool:
        """Did the run produce the correct checksum?"""
        return (
            self.host_proc is not None
            and self.host_proc.store.get("checksum") == expected_checksum(self.iterations)
        )

    def run_to_completion(self):
        """Sub-generator: launch (if needed) and wait for the program."""
        if self.host_proc is None:
            yield from self.launch()
        yield self.host_proc.main_thread.done
        return self.host_proc.store.get("checksum")
