"""Suite-level helpers for the 8 OpenMP offload benchmarks.

Thin conveniences over :class:`~repro.apps.offload.OffloadApplication` so
examples and external drivers can run paper benchmarks by name.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterator, Optional

from .offload import OffloadApplication
from .workloads import OPENMP_BENCHMARKS, BenchmarkProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiServer


def profile(name: str, iterations: Optional[int] = None, **overrides) -> BenchmarkProfile:
    """The named benchmark's profile, optionally tweaked."""
    p = OPENMP_BENCHMARKS.get(name)
    if p is None:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(OPENMP_BENCHMARKS)}"
        )
    if iterations is not None:
        overrides["iterations"] = iterations
    return replace(p, **overrides) if overrides else p


def make_app(
    server: "XeonPhiServer",
    name: str,
    iterations: Optional[int] = None,
    device: int = 0,
    snapify_enabled: bool = True,
    **overrides,
) -> OffloadApplication:
    """Build (without launching) the named benchmark on ``server``."""
    return OffloadApplication(
        server,
        profile(name, iterations, **overrides),
        device=device,
        snapify_enabled=snapify_enabled,
    )


def run_benchmark(
    server: "XeonPhiServer",
    name: str,
    iterations: Optional[int] = None,
    **kwargs,
) -> OffloadApplication:
    """Run the named benchmark to completion; returns the verified app."""
    app = make_app(server, name, iterations, **kwargs)

    def driver(sim):
        yield from app.run_to_completion()

    server.run(driver(server.sim))
    if not app.verify():
        raise AssertionError(f"{name} produced a wrong checksum")
    return app


def suite() -> Iterator[BenchmarkProfile]:
    """Iterate the full 8-benchmark suite in canonical order."""
    return iter(OPENMP_BENCHMARKS.values())
