"""Native (card-only) micro-benchmarks of §7's Snapify-IO evaluation.

* :func:`copy_microbenchmark` — the Table 3 workload: copy a file between
  the host and the Xeon Phi via scp, NFS or Snapify-IO.
* :class:`MallocLoopBenchmark` — the Table 4 workload: a native OpenMP
  process that mallocs 1 MB - 4 GB and spins in a 240-thread loop; BLCR
  snapshots it through each storage backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..blcr import cr_checkpoint, cr_restart
from ..osim.fd import RegularFileFD
from ..osim.process import SimProcess
from ..snapify_io.library import snapifyio_open
from ..snapify_io.nfs import NFSKernelBufferedFD, NFSMount, NFSUserBufferedFD
from ..snapify_io.scp import scp_copy

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiServer


# ---------------------------------------------------------------------------
# Table 3: file copy micro-benchmark
# ---------------------------------------------------------------------------


def copy_microbenchmark(server: "XeonPhiServer", method: str, direction: str,
                        nbytes: int, device: int = 0):
    """Sub-generator: copy ``nbytes`` between card and host via ``method``
    ('scp' | 'nfs' | 'snapify-io') in ``direction`` ('to_host' | 'to_phi').
    Returns the elapsed simulated time."""
    sim = server.sim
    phi_os = server.phi_os(device)
    host_os = server.host_os
    src_is_phi = direction == "to_host"
    src_os, dst_os = (phi_os, host_os) if src_is_phi else (host_os, phi_os)

    # Stage the source file (not timed).
    src_path = f"/bench/src_{method}_{direction}"
    yield from src_os.fs.write(src_path, nbytes)

    t0 = sim.now
    if method == "scp":
        yield from scp_copy(src_os, dst_os, src_path, f"/bench/dst_scp", server.params.scp)
    elif method == "nfs":
        mount = NFSMount(phi_os, host_os.fs, server.params.nfs)
        if src_is_phi:
            # Card reads its RAM-FS file and writes through the mount.
            yield from phi_os.fs.read(src_path)
            yield from mount.write("/bench/dst_nfs", nbytes)
        else:
            yield from mount.read(src_path)
            yield from phi_os.fs.write("/bench/dst_nfs_local", nbytes)
    elif method == "snapify-io":
        if src_is_phi:
            yield from phi_os.fs.read(src_path)
            fd = yield from snapifyio_open(phi_os, 0, "/bench/dst_sio", "w")
            yield from fd.write(nbytes)
            yield from fd.finish()
        else:
            fd = yield from snapifyio_open(phi_os, 0, src_path, "r")
            yield from _read_all(fd)
            fd.close()
            yield from phi_os.fs.write("/bench/dst_sio_local", nbytes)
    else:
        raise ValueError(f"unknown method {method!r}")
    elapsed = sim.now - t0

    # Clean up card memory so sweeps don't accumulate RAM-FS pressure.
    for fs, path in [
        (phi_os.fs, src_path if src_is_phi else "/bench/dst_nfs_local"),
        (phi_os.fs, "/bench/dst_sio_local"),
    ]:
        if fs.exists(path):
            fs.unlink(path)
    return elapsed


def _read_all(fd):
    while True:
        rec = yield from fd.read(4 * 1024 * 1024)
        if rec is None:
            break


# ---------------------------------------------------------------------------
# Table 4: BLCR checkpoint/restart of a native malloc benchmark
# ---------------------------------------------------------------------------


def malloc_loop_main(proc: SimProcess):
    """240-thread OpenMP spin loop; progress lives in the store."""
    proc.store.setdefault("spins", 0)
    while True:
        yield proc.sim.timeout(0.01)
        proc.store["spins"] += 1


class MallocLoopBenchmark:
    """Owner of one native benchmark process on the card."""

    def __init__(self, server: "XeonPhiServer", malloc_bytes: int, device: int = 0):
        self.server = server
        self.sim = server.sim
        self.phi_os = server.phi_os(device)
        self.malloc_bytes = malloc_bytes
        self.proc: Optional[SimProcess] = None

    def start(self):
        """Sub-generator: launch the native process."""
        self.proc = yield from self.phi_os.spawn_process(
            "malloc_loop", image_size=2 * 1024 * 1024, main_factory=malloc_loop_main
        )
        self.proc.map_region("heap", self.malloc_bytes)
        # 240 threads' worth of metadata records in the BLCR context: the
        # process spawns stand-in threads so nthreads is realistic.
        for t in range(239):
            self.proc.spawn_thread(_spin(self.proc), name=f"omp{t}", daemon=True)
        return self.proc

    def checkpoint(self, method: str, ctx_path: str = "/snap/native_ctx"):
        """Sub-generator: checkpoint through ``method``; returns elapsed time.

        Methods: 'local' (card RAM-FS — can OOM), 'nfs', 'nfs-buffered-kernel',
        'nfs-buffered-user', 'snapify-io'.
        """
        sim = self.sim
        host_fs = self.server.host_os.fs
        t0 = sim.now
        if method == "local":
            fd = RegularFileFD(sim, self.phi_os.fs, ctx_path, "w")
            yield from cr_checkpoint(self.proc, fd)
            fd.close()
        elif method == "nfs":
            mount = NFSMount(self.phi_os, host_fs, self.server.params.nfs, sync_writes=True)
            fd = RegularFileFD(sim, mount, ctx_path, "w")
            yield from cr_checkpoint(self.proc, fd)
            fd.close()
        elif method in ("nfs-buffered-kernel", "nfs-buffered-user"):
            mount = NFSMount(self.phi_os, host_fs, self.server.params.nfs, sync_writes=True)
            cls = NFSKernelBufferedFD if method.endswith("kernel") else NFSUserBufferedFD
            fd = cls(mount, ctx_path)
            yield from cr_checkpoint(self.proc, fd)
            yield from fd.flush()
            fd.close()
        elif method == "snapify-io":
            fd = yield from snapifyio_open(self.phi_os, 0, ctx_path, "w")
            yield from cr_checkpoint(self.proc, fd)
            yield from fd.finish()
        else:
            raise ValueError(f"unknown method {method!r}")
        return sim.now - t0

    def restart(self, method: str, ctx_path: str = "/snap/native_ctx"):
        """Sub-generator: restart from the context; returns (proc, elapsed).

        Buffering does not apply to restores (as the paper notes), so the
        methods are 'local', 'nfs' and 'snapify-io'.
        """
        sim = self.sim
        host_fs = self.server.host_os.fs
        t0 = sim.now
        if method == "local":
            fd = RegularFileFD(sim, self.phi_os.fs, ctx_path, "r")
            proc = yield from cr_restart(self.phi_os, fd)
            fd.close()
        elif method == "nfs":
            mount = NFSMount(self.phi_os, host_fs, self.server.params.nfs)
            fd = RegularFileFD(sim, mount, ctx_path, "r")
            proc = yield from cr_restart(self.phi_os, fd)
            fd.close()
        elif method == "snapify-io":
            fd = yield from snapifyio_open(self.phi_os, 0, ctx_path, "r")
            proc = yield from cr_restart(self.phi_os, fd)
            fd.close()
        else:
            raise ValueError(f"unknown method {method!r}")
        return proc, sim.now - t0

    def stop(self) -> None:
        if self.proc is not None and self.proc.alive:
            self.proc.terminate()


def _spin(proc: SimProcess):
    while True:
        yield proc.sim.timeout(1.0)
