"""NAS multi-zone MPI benchmarks (LU-MZ, SP-MZ, BT-MZ), class C.

Each MPI rank runs on its own cluster node (as in §7) and offloads its
zone's computation to that node's Xeon Phi. Ranks exchange zone-boundary
data in a ring each iteration, then run the offload region. All progress is
store-resident and all offload calls are keyed, so the coordinated
checkpoint of :mod:`repro.mpi.cr` can capture/restart the whole job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..coi.engine import COIEngine
from ..coi.pipeline import CardContext, OffloadBinary, OffloadFunction
from ..mpi.runtime import MPIComm
from ..osim.process import SimProcess
from ..sim.events import Event
from .offload import expected_checksum, _iterate_effect
from .workloads import MZProfile, mz_rank_footprint

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import XeonPhiCluster


def build_mz_binary(profile: MZProfile, offload_heap: int) -> OffloadBinary:
    def init_effect(ctx: CardContext, args):
        if not ctx.has_region("zone_heap"):
            ctx.map_region("zone_heap", offload_heap)
        return "ready"

    return OffloadBinary(
        name=f"{profile.name}_mic.so",
        image_size=6 * 1024 * 1024,
        functions={
            "init": OffloadFunction("init", duration=20e-3, effect=init_effect),
            "iterate": OffloadFunction(
                "iterate", duration=profile.call_duration, effect=_iterate_effect
            ),
        },
    )


class MZJob:
    """One NAS-MZ run: ``n_ranks`` ranks, one per node."""

    def __init__(self, cluster: "XeonPhiCluster", profile: MZProfile, n_ranks: int,
                 iterations: Optional[int] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.profile = profile
        self.n_ranks = n_ranks
        self.iterations = iterations if iterations is not None else profile.iterations
        self.comm = MPIComm(cluster, n_ranks)
        self.ranks: List[MZRank] = [
            MZRank(self, rank) for rank in range(n_ranks)
        ]
        # Coordinated-checkpoint state (see repro.mpi.cr).
        self.park_requested = False
        self.parked: int = 0
        self.all_parked: Optional[Event] = None
        self.release_event: Optional[Event] = None

    def launch(self):
        """Sub-generator: start every rank process."""
        for rank in self.ranks:
            yield from rank.launch()

    def join(self):
        """Sub-generator: wait for all ranks to finish."""
        for rank in self.ranks:
            yield rank.host_proc.main_thread.done

    def verify(self) -> bool:
        return all(
            r.host_proc.store.get("checksum") == expected_checksum(self.iterations)
            for r in self.ranks
        )


class MZRank:
    """One MPI rank: a host process on node ``rank`` with an offload process."""

    def __init__(self, job: MZJob, rank: int):
        self.job = job
        self.rank = rank
        self.sim = job.sim
        self.server = job.cluster.server(rank)
        host_heap, offload_heap, local_store = mz_rank_footprint(
            job.profile, job.n_ranks
        )
        self.host_heap = host_heap
        self.offload_heap = offload_heap
        self.local_store = local_store
        self.binary = build_mz_binary(job.profile, offload_heap)
        self.host_proc: Optional[SimProcess] = None

    def launch(self):
        self.host_proc = yield from self.server.host_os.spawn_process(
            f"{self.job.profile.name}.r{self.rank}",
            image_size=16 * 1024 * 1024,
            main_factory=self._main_factory(),
        )
        return self.host_proc

    def _main_factory(self):
        rank = self

        def main(proc: SimProcess):
            yield from rank._program(proc)

        return main

    def _program(self, proc: SimProcess):
        job, profile, comm = self.job, self.job.profile, self.job.comm
        store = proc.store
        if store.get("_blcr_restored"):
            coiproc = proc.runtime.pop("coi_restored_handle")
            proc.runtime["coi_handle"] = coiproc
        else:
            store["iter"] = 0
            store["checksum"] = 0
            store["halos"] = {}
            proc.map_region("heap", self.host_heap)
            engine = COIEngine(self.server.node, 0)
            coiproc = yield from engine.process_create(proc, self.binary)
            proc.runtime["coi_handle"] = coiproc
            buf = yield from coiproc.buffer_create(self.local_store)
            store["buf_id"] = buf.buf_id
            yield from coiproc.run_function_keyed("init", "init")

        nxt = (self.rank + 1) % job.n_ranks
        prv = (self.rank - 1) % job.n_ranks
        buf_id = store["buf_id"]
        while store["iter"] < job.iterations:
            i = store["iter"]
            # Coordinated-checkpoint park point (iteration boundary: all
            # channels provably empty here).
            if job.park_requested:
                yield from self._park()
                coiproc = proc.runtime["coi_handle"]
            coiproc = proc.runtime["coi_handle"]

            # Ring halo exchange. Sends are idempotent under tag matching,
            # so a restarted rank can safely re-send.
            if job.n_ranks > 1:
                yield from comm.send(self.rank, nxt, ("halo", i),
                                     profile.exchange_bytes, payload=i)
                if str(("halo", i)) not in store["halos"]:
                    halo = yield comm.recv(self.rank, prv, ("halo", i))
                    store["halos"] = {str(("halo", i)): halo}  # keep tiny

            buf = coiproc.buffers[buf_id]
            yield from coiproc.buffer_write(buf, payload=i, nbytes=min(
                profile.exchange_bytes, buf.size))
            result = yield from coiproc.run_function_keyed(
                ("it", i), "iterate", {"i": i, "buf": buf_id}
            )
            store["checksum"] = result
            store["iter"] = i + 1
        store["finished"] = True

    def _park(self):
        job = self.job
        job.parked += 1
        if job.parked == job.n_ranks and job.all_parked is not None:
            job.all_parked.succeed(None)
        release = job.release_event
        if release is not None:
            yield release
