"""Workload profiles for the paper's benchmarks (Table 5 stand-ins).

The paper evaluates 8 OpenMP offload benchmarks and 3 NAS multi-zone MPI
benchmarks. Table 5 (benchmark characteristics) is an image in our source
text, so the profiles below are *synthesized* to satisfy every quantitative
statement §7 makes about them:

* MD has the highest Snapify runtime overhead (many short offload calls);
  the average overhead across the suite is ~1.5 % and the max < 5 % (Fig 9).
* SS and SG have the largest host snapshots (up to ~1.3 GB) and the largest
  local stores, with comparatively small offload snapshots (Fig 10b).
* MC is the smallest workload — fastest migration (4.9 s in the paper).
* Checkpoint file sizes span ~8 MB to ~1.3 GB across the suite.

The four names the prose mentions (MD, MC, SS, SG) are kept; the suite is
completed with common HPC kernels (BP, CG, FT, KM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hw.params import GB, KB, MB


@dataclass(frozen=True)
class BenchmarkProfile:
    """Characteristics of one offload benchmark."""

    name: str
    description: str
    #: Private heap of the host process (dominates the host snapshot).
    host_heap: int
    #: Private heap of the offload process (dominates the offload snapshot).
    offload_heap: int
    #: Total COI buffer bytes (the local store).
    local_store: int
    #: Number of COI buffers the local store is split into.
    n_buffers: int
    #: Size of the card-side binary.
    binary_size: int
    #: Simulated card time per offload call.
    call_duration: float
    #: Host compute between offload calls.
    host_compute: float
    #: Bytes moved host->card / card->host around each call.
    transfer_in: int
    transfer_out: int
    #: Offload calls in a full run.
    iterations: int

    @property
    def bytes_per_iteration(self) -> int:
        return self.transfer_in + self.transfer_out


#: The 8 OpenMP benchmarks (Fig. 9 / Fig. 10).
OPENMP_BENCHMARKS: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        BenchmarkProfile(
            name="BP", description="back-propagation training",
            host_heap=32 * MB, offload_heap=260 * MB, local_store=120 * MB,
            n_buffers=3, binary_size=6 * MB,
            call_duration=3.0e-3, host_compute=0.5e-3,
            transfer_in=2 * MB, transfer_out=2 * MB, iterations=300,
        ),
        BenchmarkProfile(
            name="CG", description="conjugate gradient solver",
            host_heap=48 * MB, offload_heap=420 * MB, local_store=200 * MB,
            n_buffers=4, binary_size=5 * MB,
            call_duration=8.0e-3, host_compute=1.0e-3,
            transfer_in=4 * MB, transfer_out=1 * MB, iterations=250,
        ),
        BenchmarkProfile(
            name="FT", description="3-D FFT spectral kernel",
            host_heap=56 * MB, offload_heap=650 * MB, local_store=280 * MB,
            n_buffers=4, binary_size=7 * MB,
            call_duration=15.0e-3, host_compute=2.0e-3,
            transfer_in=8 * MB, transfer_out=8 * MB, iterations=200,
        ),
        BenchmarkProfile(
            name="KM", description="k-means clustering",
            host_heap=24 * MB, offload_heap=180 * MB, local_store=60 * MB,
            n_buffers=2, binary_size=4 * MB,
            call_duration=2.5e-3, host_compute=0.4e-3,
            transfer_in=1 * MB, transfer_out=512 * KB, iterations=400,
        ),
        BenchmarkProfile(
            name="MC", description="Monte Carlo option pricing",
            host_heap=8 * MB, offload_heap=64 * MB, local_store=6 * MB,
            n_buffers=1, binary_size=3 * MB,
            call_duration=20.0e-3, host_compute=0.2e-3,
            transfer_in=64 * KB, transfer_out=64 * KB, iterations=200,
        ),
        BenchmarkProfile(
            name="MD", description="molecular dynamics (short steps)",
            host_heap=20 * MB, offload_heap=140 * MB, local_store=48 * MB,
            n_buffers=2, binary_size=5 * MB,
            call_duration=0.55e-3, host_compute=0.05e-3,
            transfer_in=256 * KB, transfer_out=256 * KB, iterations=2000,
        ),
        BenchmarkProfile(
            name="SG", description="scatter-gather index build",
            host_heap=1100 * MB, offload_heap=120 * MB, local_store=800 * MB,
            n_buffers=8, binary_size=5 * MB,
            call_duration=12.0e-3, host_compute=3.0e-3,
            transfer_in=16 * MB, transfer_out=4 * MB, iterations=150,
        ),
        BenchmarkProfile(
            name="SS", description="sample sort over large keys",
            host_heap=1300 * MB, offload_heap=150 * MB, local_store=1000 * MB,
            n_buffers=8, binary_size=5 * MB,
            call_duration=10.0e-3, host_compute=4.0e-3,
            transfer_in=16 * MB, transfer_out=16 * MB, iterations=150,
        ),
    ]
}

OPENMP_NAMES: List[str] = list(OPENMP_BENCHMARKS)


@dataclass(frozen=True)
class MZProfile:
    """One NAS multi-zone MPI benchmark, class C (Fig. 11)."""

    name: str
    #: Total problem state across all ranks.
    total_state: int
    #: Fixed per-rank footprint (runtime, halos) independent of rank count.
    per_rank_fixed: int
    #: Fraction of a rank's state living on the host vs the card.
    host_fraction: float
    #: Per-iteration zone-exchange bytes between neighbor ranks.
    exchange_bytes: int
    call_duration: float
    iterations: int


NAS_MZ_BENCHMARKS: Dict[str, MZProfile] = {
    p.name: p
    for p in [
        MZProfile(name="LU-MZ", total_state=1200 * MB, per_rank_fixed=90 * MB,
                  host_fraction=0.45, exchange_bytes=6 * MB,
                  call_duration=40e-3, iterations=60),
        MZProfile(name="SP-MZ", total_state=900 * MB, per_rank_fixed=80 * MB,
                  host_fraction=0.40, exchange_bytes=4 * MB,
                  call_duration=30e-3, iterations=60),
        MZProfile(name="BT-MZ", total_state=1000 * MB, per_rank_fixed=85 * MB,
                  host_fraction=0.42, exchange_bytes=5 * MB,
                  call_duration=35e-3, iterations=60),
    ]
}


def mz_rank_footprint(profile: MZProfile, n_ranks: int) -> Tuple[int, int, int]:
    """(host_heap, offload_heap, local_store) for one rank of ``n_ranks``."""
    share = profile.total_state // n_ranks + profile.per_rank_fixed
    host_heap = int(share * profile.host_fraction)
    card_share = share - host_heap
    local_store = int(card_share * 0.55)
    offload_heap = card_share - local_store
    return host_heap, offload_heap, local_store
