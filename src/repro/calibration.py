"""Calibrated hardware parameters for reproducing the paper's evaluation.

Each value is anchored either to the paper's testbed (Table 2: Xeon E5-2630
host, Xeon Phi 5110P with 8 GB, MPSS 2.1) or to public Xeon Phi-era
measurements; the deliberately *tuned* values (marked) were chosen so the
simulated baselines land in the paper's reported ranges. EXPERIMENTS.md
records the per-table comparison.

Summary of anchors:

* PCIe x16 Gen2 DMA: ~6-6.5 GB/s large-transfer SCIF RDMA (Intel SCIF docs).
* Phi single-stream memcpy: ~2 GB/s (1.05 GHz in-order cores).
* Host disk: 2014 single-SATA server disk, ~120 MB/s effective sync write —
  this is what makes the SS/SG host snapshots the slow part of Fig. 10.
* NFS-over-PCIe (virtio ethernet): ~180/330 MB/s write/read streaming,
  ~1.2 ms per synchronous RPC (tuned: yields Table 3's ~6x/3x write/read
  gap and Table 4's 4.7-8.8x checkpoint speedups).
* scp: ~28 MB/s — a single 1 GHz in-order Phi core doing AES without
  AES-NI (tuned to Table 3's 22-30x).
* BLCR page-walk cost on the Phi: 2 µs / 4 KiB page (tuned: puts swap-out
  and migration latencies in the seconds range of Fig. 10 while preserving
  Table 4's transport-bound ratios).
"""

from __future__ import annotations

from .hw.params import (
    GB,
    MB,
    DiskParams,
    HardwareParams,
    HostParams,
    MemoryParams,
    NetworkParams,
    NFSParams,
    PCIeParams,
    PhiParams,
    ScpParams,
    SnapifyIOParams,
)


def paper_testbed(phis_per_node: int = 2) -> HardwareParams:
    """The single-node testbed of Table 2 (two 8 GB Xeon Phi 5110P)."""
    return HardwareParams(
        host=HostParams(
            cores=12,
            memory=MemoryParams(capacity=32 * GB, memcpy_bw=6.0 * GB),
            disk=DiskParams(
                read_bw=140 * MB,
                write_bw=120 * MB,
                op_latency=0.3e-3,
                dirty_limit=4 * GB,
            ),
            process_spawn_latency=30e-3,
        ),
        phi=PhiParams(
            cores=60,
            threads_per_core=4,
            memory=MemoryParams(capacity=8 * GB, memcpy_bw=2.0 * GB),
            ramfs_write_factor=1.3,
            process_spawn_latency=120e-3,
            dyld_latency=60e-3,
            blcr_page_cost=2e-6,
        ),
        pcie=PCIeParams(
            dma_bw_h2d=6.0 * GB,
            dma_bw_d2h=6.5 * GB,
            message_latency=10e-6,
            rdma_op_latency=25e-6,
        ),
        network=NetworkParams(bandwidth=3.2 * GB, latency=2e-6),
        nfs=NFSParams(
            write_bw=180 * MB,
            read_bw=330 * MB,
            op_latency=1.2e-3,
            client_cache=2 * MB,
            rpc_size=1 * MB,
        ),
        scp=ScpParams(bandwidth=28 * MB, connection_setup=0.35, per_file_overhead=0.05),
        snapify_io=SnapifyIOParams(
            buffer_size=4 * MB,
            socket_bw_phi=1.3 * GB,
            socket_bw_host=5.0 * GB,
            connect_latency=3.5e-3,
        ),
        phis_per_node=phis_per_node,
    )


def mpi_cluster_testbed() -> HardwareParams:
    """The 4-node MPI cluster of §7 (one 8 GB Phi per node)."""
    return paper_testbed(phis_per_node=1)
