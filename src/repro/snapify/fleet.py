"""Fleet control plane: drive Snapify operations across hundreds of cards.

The single-operation layers below this one (:mod:`repro.snapify.ops`,
the §5 use cases) answer "how does *one* checkpoint/swap/migrate run to
completion"; this module answers "how do *hundreds* of them run at once
without trampling each other".  The idiom is the one the ADC16 fleet
controller uses (``snap_manager.py``: one manager object fanning keyed
commands out to a board fleet through a work queue and collecting keyed
results), adapted to the simulated control plane:

* **Admission control** — a global in-flight cap plus a per-card cap.  A
  card's COI daemon serializes captures on its memory bandwidth anyway, so
  letting 50 checkpoints pile onto one card only grows pause time; the
  per-card cap keeps each card at its concurrency sweet spot while the
  global cap bounds host-side memory and fabric pressure.
* **Priority queues** — maintenance (evacuating a failing card) beats
  scheduler swap traffic, which beats background checkpoints.  Within a
  priority, admission is FIFO, except that a request whose card is at its
  per-card cap never blocks a request for an idle card behind it.
* **Batched submission, keyed results** — ``submit_batch`` takes keyed
  requests and ``collect`` returns a :class:`FleetResult` mapping every
  key to its outcome, aggregating partial failures instead of dying on the
  first one (a fleet where 3 of 300 cards are sick is the *normal* case).
* **Health sweeps** — calibration-style: probe every card with a small
  timed RAM-FS write, and surface dead cards and stragglers (probe latency
  far above the fleet median) to the swap scheduler, which stops placing
  work on them (:meth:`repro.sched.scheduler.SwapScheduler.note_health`).

Everything here is layered *on top of* :class:`~repro.snapify.ops.
OperationManager`: each admitted request ultimately runs an ordinary
correlated operation, and the finished operation is tagged with the fleet
key that asked for it (``op.fleet_key``) so fuzz triage and the trace CLI
can attribute control-plane traffic.  The single-operation path does not
go through this module at all — a run that never builds a
:class:`FleetManager` schedules exactly the same events as before (the
golden trace proves it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple,
)

from ..obs.registry import MetricsRegistry
from ..sim.events import Event
from .monitor import SnapifyError
from .ops import OperationManager, OperationResult

# -- priorities -------------------------------------------------------------

#: Evacuations and health probes: the fleet must react to failing hardware
#: before it serves anything else.
MAINTENANCE = 0
#: Scheduler-driven swap traffic: a queued tenant is waiting on it.
SWAP = 1
#: Periodic checkpoints: pure insurance, always preemptible by the above.
BACKGROUND = 2

PRIORITIES = (MAINTENANCE, SWAP, BACKGROUND)
PRIORITY_NAMES = {MAINTENANCE: "maintenance", SWAP: "swap", BACKGROUND: "background"}

# -- ticket states ----------------------------------------------------------

QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
TICKET_TERMINAL = (DONE, FAILED)


@dataclass(frozen=True)
class CardRef:
    """One coprocessor in a fleet, addressed as (node index, device index)."""

    node: int
    device: int

    @property
    def key(self) -> str:
        return f"n{self.node}.mic{self.device}"

    def __str__(self) -> str:
        return self.key


@dataclass
class FleetRequest:
    """One keyed unit of fleet work, before admission.

    ``work`` is a zero-argument callable returning the sub-generator that
    performs the operation (a factory, so the generator is created only
    when the request is admitted); ``proc`` optionally names the host
    process whose context the work runs in (operations on a ``snapify_t``
    want their own host process, probes are fine on a bare kernel thread).
    """

    key: str
    kind: str
    work: Callable[[], Generator]
    card: Optional[CardRef] = None
    priority: int = BACKGROUND
    proc: Optional[Any] = None


class FleetTicket:
    """One submitted request: its queue position, progress, and outcome."""

    __slots__ = ("key", "kind", "card", "priority", "state", "submitted",
                 "admitted", "finished", "result", "error", "done",
                 "_request")

    def __init__(self, request: FleetRequest, now: float, done: Event):
        self.key = request.key
        self.kind = request.kind
        self.card = request.card
        self.priority = request.priority
        self.state = QUEUED
        self.submitted = now
        self.admitted: Optional[float] = None
        self.finished: Optional[float] = None
        #: Whatever the work returned — an OperationResult for the standard
        #: submitters, a CardHealth for probes.
        self.result: Any = None
        self.error: Optional[str] = None
        #: Succeeds with the ticket itself once terminal (never fails, so a
        #: collect() over a partly-failed batch still completes; inspect
        #: ``state``/``error`` for the verdict).
        self.done = done
        self._request = request

    @property
    def ok(self) -> bool:
        return self.state == DONE

    @property
    def queue_wait(self) -> Optional[float]:
        if self.admitted is None:
            return None
        return self.admitted - self.submitted

    @property
    def service_time(self) -> Optional[float]:
        if self.admitted is None or self.finished is None:
            return None
        return self.finished - self.admitted

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (repro artifacts, CLI tables)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "card": self.card.key if self.card is not None else None,
            "priority": PRIORITY_NAMES.get(self.priority, self.priority),
            "state": self.state,
            "error": self.error,
            "queue_wait": self.queue_wait,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FleetTicket {self.key} {self.kind} {self.state}>"


class FleetResult:
    """Keyed outcomes of one collected batch, partial failures included."""

    def __init__(self, tickets: Dict[str, FleetTicket]):
        self.tickets = tickets

    @property
    def ok(self) -> bool:
        return all(t.state == DONE for t in self.tickets.values())

    @property
    def failures(self) -> Dict[str, FleetTicket]:
        return {k: t for k, t in self.tickets.items() if t.state != DONE}

    @property
    def results(self) -> Dict[str, Any]:
        """key -> work return value (None for failed tickets)."""
        return {k: t.result for k, t in self.tickets.items()}

    def operation_results(self) -> Dict[str, OperationResult]:
        """The subset of results that are typed operation outcomes."""
        return {k: t.result for k, t in self.tickets.items()
                if isinstance(t.result, OperationResult)}

    def by_card(self) -> Dict[str, List[FleetTicket]]:
        out: Dict[str, List[FleetTicket]] = {}
        for t in self.tickets.values():
            out.setdefault(t.card.key if t.card else "-", []).append(t)
        return out

    def raise_on_error(self) -> "FleetResult":
        """Aggregate every failed ticket into one SnapifyError (or return
        self when the whole batch succeeded)."""
        failed = self.failures
        if failed:
            detail = "; ".join(
                f"{k} ({t.kind}) failed: {t.error}" for k, t in failed.items()
            )
            raise SnapifyError(
                f"{len(failed)}/{len(self.tickets)} fleet operation(s) failed: "
                f"{detail}"
            )
        return self

    def summary(self) -> str:
        n_ok = sum(1 for t in self.tickets.values() if t.state == DONE)
        bits = [f"fleet batch: {len(self.tickets)} ops, {n_ok} ok, "
                f"{len(self.tickets) - n_ok} failed"]
        bits.extend(f"  FAIL {k} ({t.kind}): {t.error}"
                    for k, t in self.failures.items())
        return "\n".join(bits)

    def __len__(self) -> int:
        return len(self.tickets)


# ---------------------------------------------------------------------------
# Health sweeps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CardHealth:
    """One card's probe outcome."""

    card: str  # CardRef.key
    ok: bool
    #: Probe service latency in simulated seconds (None when the probe
    #: failed before it could time anything).
    latency: Optional[float]
    error: Optional[str] = None


class HealthReport:
    """All cards' probe outcomes from one sweep, with outlier analysis."""

    def __init__(self, entries: Sequence[CardHealth], when: float):
        self.entries = list(entries)
        self.when = when

    @property
    def failed(self) -> List[CardHealth]:
        return [h for h in self.entries if not h.ok]

    @property
    def healthy(self) -> List[CardHealth]:
        return [h for h in self.entries if h.ok]

    def median_latency(self) -> Optional[float]:
        lats = sorted(h.latency for h in self.healthy if h.latency is not None)
        if not lats:
            return None
        mid = len(lats) // 2
        if len(lats) % 2:
            return lats[mid]
        return (lats[mid - 1] + lats[mid]) / 2.0

    def stragglers(self, z: float = 3.5, min_spread: float = 0.010) -> List[CardHealth]:
        """Healthy cards whose probe latency sits more than ``z`` robust
        sigmas above the fleet median — loaded, degraded, or contended
        cards the scheduler should deprioritize before they become
        pause-time outliers.

        Uses the MAD-based z-score from :func:`repro.obs.slo.robust_zscores`
        (the same detector the telemetry :class:`~repro.obs.slo.StragglerSLO`
        evaluates live) instead of the old ad-hoc 3x-median threshold,
        which misfired on tightly-clustered fleets and under-fired on
        noisy ones.  ``min_spread`` floors the absolute deviation: a card
        must also sit that many seconds above the median, so microsecond
        jitter on a tightly-clustered fleet never flags (a tiny MAD would
        otherwise inflate it into a huge z-score)."""
        from ..obs.slo import robust_zscores

        lats = {h.card: h.latency for h in self.healthy if h.latency is not None}
        if not lats:
            return []
        scores = robust_zscores(lats)
        median = sorted(lats.values())[len(lats) // 2]
        return [h for h in self.healthy
                if h.latency is not None and scores.get(h.card, 0.0) > z
                and h.latency - median > min_spread]

    def straggler_zscores(self) -> Dict[str, float]:
        """Per-card robust z-score of probe latency (diagnostic surface)."""
        from ..obs.slo import robust_zscores

        return robust_zscores({
            h.card: h.latency for h in self.healthy if h.latency is not None
        })

    def summary(self) -> str:
        bits = [f"health sweep @ {self.when:.3f}s: {len(self.entries)} cards, "
                f"{len(self.failed)} failed, {len(self.stragglers())} straggling"]
        bits.extend(f"  FAILED {h.card}: {h.error}" for h in self.failed)
        bits.extend(f"  STRAGGLER {h.card}: {h.latency * 1e3:.2f} ms "
                    f"(median {self.median_latency() * 1e3:.2f} ms)"
                    for h in self.stragglers())
        return "\n".join(bits)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class FleetManager:
    """Admission-controlled, priority-queued fleet operation dispatcher.

    One manager drives one fleet (usually a
    :class:`~repro.testbed.XeonPhiFleet`, but anything exposing ``sim``,
    ``cards()`` and ``phi(card)`` works).  Submission is non-blocking:
    ``submit``/``submit_batch`` enqueue and return tickets immediately;
    admission happens as in-flight slots free up, strictly by priority and
    FIFO within a priority.  ``collect`` waits for a batch and returns its
    keyed :class:`FleetResult`.
    """

    #: Simulator attribute holding every manager built on that simulator
    #: (the fuzz oracles audit all of them at quiescence).
    _ATTR = "snapify_fleets"

    def __init__(self, fleet: Any = None, *, sim: Any = None,
                 max_in_flight: int = 16, per_card_limit: int = 2,
                 name: str = "fleet"):
        if fleet is None and sim is None:
            raise ValueError("FleetManager needs a fleet or a simulator")
        if max_in_flight < 1 or per_card_limit < 1:
            raise ValueError("admission caps must be >= 1")
        self.fleet = fleet
        self.sim = sim if sim is not None else fleet.sim
        self.name = name
        self.max_in_flight = max_in_flight
        self.per_card_limit = per_card_limit
        #: Every ticket ever submitted, in submission order.
        self.tickets: List[FleetTicket] = []
        self._queues: Dict[int, List[FleetTicket]] = {p: [] for p in PRIORITIES}
        self.in_flight = 0
        self._per_card: Dict[str, int] = {}
        #: High-water marks, audited by the admission-cap oracle.
        self.hwm_in_flight = 0
        self.hwm_per_card: Dict[str, int] = {}
        self._probe_ids = itertools.count(1)
        registry = MetricsRegistry.of(self.sim)
        self._registry = registry
        self.m_submitted = registry.counter(f"{name}.submitted")
        self.m_completed = registry.counter(f"{name}.completed")
        self.m_failed = registry.counter(f"{name}.failed")
        registry.gauge(f"{name}.queue_depth", self.queue_depth)
        registry.gauge(f"{name}.in_flight", lambda: self.in_flight)
        # Per-priority series ("<name>.prio.<label>.<what>") and per-card
        # series ("<name>.card.<key>.<what>") use the structured segments
        # the Prometheus exporter lifts into {priority=...}/{card=...}
        # labels; per-card instruments are created lazily on first touch so
        # a 128-card topology only pays for the cards it actually drives.
        self._prio_submitted = {
            p: registry.counter(f"{name}.prio.{PRIORITY_NAMES[p]}.submitted")
            for p in PRIORITIES
        }
        self._wait_hist = {
            p: registry.histogram(f"{name}.wait.{PRIORITY_NAMES[p]}")
            for p in PRIORITIES
        }
        self._service_hist = registry.histogram(f"{name}.service")
        self._card_gauges: set = set()
        fleets = getattr(self.sim, self._ATTR, None)
        if fleets is None:
            fleets = []
            setattr(self.sim, self._ATTR, fleets)
        fleets.append(self)

    @classmethod
    def all_of(cls, sim: Any) -> List["FleetManager"]:
        """Every manager built on ``sim`` (empty when the run had none)."""
        return list(getattr(sim, cls._ATTR, ()))

    # -- queue state ---------------------------------------------------------
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def quiescent(self) -> bool:
        return self.in_flight == 0 and self.queue_depth() == 0

    # -- submission -----------------------------------------------------------
    def submit(self, key: str, kind: str, work: Callable[[], Generator], *,
               card: Optional[CardRef] = None, priority: int = BACKGROUND,
               proc: Any = None) -> FleetTicket:
        """Enqueue one keyed unit of work; returns its ticket immediately."""
        return self.submit_batch([FleetRequest(
            key=key, kind=kind, work=work, card=card, priority=priority,
            proc=proc,
        )])[0]

    def submit_batch(self, requests: Sequence[FleetRequest]) -> List[FleetTicket]:
        """Enqueue a batch; returns one ticket per request, in order."""
        tickets = []
        for req in requests:
            if req.priority not in self._queues:
                raise ValueError(f"unknown priority {req.priority!r}")
            done = Event(self.sim, name=f"{self.name}:{req.key}.done")
            ticket = FleetTicket(req, self.sim.now, done)
            self.tickets.append(ticket)
            self._queues[req.priority].append(ticket)
            self.m_submitted.inc()
            self._prio_submitted[req.priority].inc()
            self.sim.trace.emit(
                "fleet.submit", key=req.key, kind=req.kind,
                card=req.card.key if req.card else None,
                priority=PRIORITY_NAMES[req.priority],
            )
            tickets.append(ticket)
        self._pump()
        return tickets

    # -- the standard operation submitters ------------------------------------
    def submit_checkpoint(self, key: str, snap: Any, *,
                          card: Optional[CardRef] = None,
                          priority: int = BACKGROUND) -> FleetTicket:
        """A full non-terminating checkpoint cycle on a prepared handle."""
        from .ops import capture_sequence

        def work():
            return (yield from capture_sequence(snap))

        return self.submit(key, "checkpoint", work, card=card,
                           priority=priority, proc=snap.coiproc.host_proc)

    def submit_swap_cycle(self, key: str, coiproc: Any, engine: Any,
                          snapshot_path: str, *,
                          card: Optional[CardRef] = None,
                          priority: int = SWAP) -> FleetTicket:
        """Swap a process out to ``snapshot_path`` and straight back in on
        ``engine`` — the scheduler's make-room/reclaim pair as one keyed
        fleet operation."""
        from .usecases import snapify_swapin, snapify_swapout

        host_proc = coiproc.host_proc

        def work():
            snap = yield from snapify_swapout(snapshot_path, coiproc)
            yield from snapify_swapin(snap, engine, host_proc)
            return snap.op.result

        return self.submit(key, "swap", work, card=card, priority=priority,
                           proc=host_proc)

    def submit_migrate(self, key: str, coiproc: Any, engine_to: Any,
                       snapshot_path: str, *,
                       card: Optional[CardRef] = None,
                       priority: int = MAINTENANCE) -> FleetTicket:
        """Migrate a process to ``engine_to`` (maintenance priority: this
        is how a card is evacuated)."""
        from .usecases import snapify_migration

        def work():
            _new, snap = yield from snapify_migration(
                coiproc, engine_to, snapshot_path
            )
            return snap.op.result

        return self.submit(key, "migrate", work, card=card, priority=priority,
                           proc=coiproc.host_proc)

    def submit_reseed(self, key: str, coiproc: Any, host_os: Any,
                      engine_to: Any, snapshot_path: str, *,
                      card: Optional[CardRef] = None,
                      priority: int = MAINTENANCE,
                      integrate: Optional[Callable[[Any], None]] = None) -> FleetTicket:
        """Clone a healthy replica onto a spare card (maintenance priority:
        this is how a degraded replication team regains redundancy).

        Unlike :meth:`submit_migrate` the source keeps running: the work is
        a non-destructive checkpoint of ``coiproc`` followed by a restart
        of the snapshot on ``engine_to``. ``integrate`` (if given) runs
        synchronously after the restart returns — before the restored main
        thread is scheduled — so the caller can stamp replica identity and
        join team membership without racing the clone.
        """
        from .api import snapify_t
        from .usecases import checkpoint_offload_app, restart_offload_app

        def work():
            snap = snapify_t(snapshot_path=snapshot_path, coiproc=coiproc)
            yield from checkpoint_offload_app(snap)
            result = yield from restart_offload_app(
                host_os, snapshot_path, engine_to
            )
            if integrate is not None:
                integrate(result)
            return result.result

        return self.submit(key, "reseed", work, card=card, priority=priority,
                           proc=coiproc.host_proc)

    def submit_restore(self, key: str, snap: Any, engine: Any, host_proc: Any,
                       *, card: Optional[CardRef] = None,
                       priority: int = SWAP) -> FleetTicket:
        """Swap a previously swapped-out handle back in on ``engine``."""
        from .usecases import snapify_swapin

        def work():
            yield from snapify_swapin(snap, engine, host_proc)
            return snap.op.result

        return self.submit(key, "restore", work, card=card, priority=priority,
                           proc=host_proc)

    # -- the memory tier ------------------------------------------------------
    def memory_tier(self):
        """The fleet's in-memory snapshot tier, with every card registered
        under its :class:`CardRef` key (created on first use)."""
        from ..snapify_io.memtier import MemoryTier

        tier = MemoryTier.of(self.sim)
        if self.fleet is not None:
            tier.register_fleet(self.fleet)
        return tier

    def partner_for(self, card: CardRef) -> Optional[str]:
        """Round-robin replication partner for ``card`` (healthy cards
        only); None when the fleet has no other healthy card."""
        return self.memory_tier().choose_partner(card.key)

    def submit_demotion(self, key: str, path: str, host_os: Any, *,
                        card: Optional[CardRef] = None, release: bool = False,
                        priority: int = BACKGROUND) -> FleetTicket:
        """Demote an incremental chain to the host NFS export as a
        BACKGROUND ticket — durability insurance off the capture critical
        path. The work retries over transient NFS outages; an export that
        stays down fails the ticket and the chain remains memory-resident."""
        tier = self.memory_tier()

        def work():
            total = yield from tier.demote_with_retry(path, host_os,
                                                      release=release)
            return total

        return self.submit(key, "demote", work, card=card, priority=priority)

    def submit_rehome(self, bad_card: CardRef, *,
                      priority: int = MAINTENANCE) -> FleetTicket:
        """Move every tier copy off a flagged card (maintenance priority:
        this is the evacuation side of a health sweep)."""
        tier = self.memory_tier()

        def work():
            moved = yield from tier.rehome_from(bad_card.key)
            return moved

        return self.submit(f"rehome:{bad_card.key}", "rehome", work,
                           card=None, priority=priority)

    def rehome_after_sweep(self, report: "HealthReport") -> List[FleetTicket]:
        """Submit a re-home ticket for every card a sweep flagged (failed
        or straggling). Returns the tickets; no-op when the tier is unused."""
        from ..snapify_io.memtier import MemoryTier

        if MemoryTier.peek(self.sim) is None:
            return []
        flagged = {h.card for h in report.failed}
        flagged.update(h.card for h in report.stragglers())
        tickets = []
        for key in sorted(flagged):
            digits, _, dev = key.partition(".mic")
            card = CardRef(node=int(digits.lstrip("n") or 0), device=int(dev or 0))
            tickets.append(self.submit_rehome(card))
        return tickets

    # -- collection -----------------------------------------------------------
    def collect(self, tickets: Sequence[FleetTicket], *,
                raise_on_error: bool = False):
        """Sub-generator: wait until every ticket is terminal; returns the
        keyed :class:`FleetResult`.  Duplicate keys in one batch are a
        caller bug and rejected up front (the result map would silently
        drop outcomes)."""
        keyed: Dict[str, FleetTicket] = {}
        for t in tickets:
            if t.key in keyed:
                raise SnapifyError(f"duplicate fleet key in batch: {t.key!r}")
            keyed[t.key] = t
        pending = [t.done for t in tickets if not t.done.triggered]
        if pending:
            yield self.sim.all_of(pending)
        result = FleetResult(keyed)
        if raise_on_error:
            result.raise_on_error()
        return result

    # -- admission ------------------------------------------------------------
    def _card_free(self, card: Optional[CardRef]) -> bool:
        if card is None:
            return True
        return self._per_card.get(card.key, 0) < self.per_card_limit

    def _pop_admissible(self) -> Optional[FleetTicket]:
        """Highest-priority FIFO ticket whose card has a free slot.  A
        request for a saturated card does not block requests for idle cards
        queued behind it (head-of-line blocking would idle the fleet)."""
        for priority in PRIORITIES:
            queue = self._queues[priority]
            for i, ticket in enumerate(queue):
                if self._card_free(ticket.card):
                    del queue[i]
                    return ticket
        return None

    def _pump(self) -> None:
        """Admit as many queued tickets as the caps allow right now."""
        while self.in_flight < self.max_in_flight:
            ticket = self._pop_admissible()
            if ticket is None:
                return
            self._admit(ticket)

    def _admit(self, ticket: FleetTicket) -> None:
        self.in_flight += 1
        self.hwm_in_flight = max(self.hwm_in_flight, self.in_flight)
        if ticket.card is not None:
            key = ticket.card.key
            held = self._per_card.get(key, 0) + 1
            self._per_card[key] = held
            if held > self.hwm_per_card.get(key, 0):
                self.hwm_per_card[key] = held
            if key not in self._card_gauges:
                self._card_gauges.add(key)
                self._registry.gauge(
                    f"{self.name}.card.{key}.in_flight",
                    lambda k=key: self._per_card.get(k, 0),
                )
        ticket.state = RUNNING
        ticket.admitted = self.sim.now
        self._wait_hist[ticket.priority].observe(ticket.queue_wait)
        self.sim.trace.emit("fleet.admit", key=ticket.key, kind=ticket.kind,
                            card=ticket.card.key if ticket.card else None,
                            in_flight=self.in_flight)
        request = ticket._request
        runner = self._run(ticket)
        try:
            if request.proc is not None:
                request.proc.spawn_thread(
                    runner, name=f"fleet:{ticket.key}", daemon=True
                )
            else:
                self.sim.spawn(runner, name=f"fleet:{ticket.key}", daemon=True)
        except Exception as exc:
            # The owning process died between submit and admission: the
            # runner never started, so settle the ticket here.
            runner.close()
            self._finish(ticket, error=f"{type(exc).__name__}: {exc}")

    def _run(self, ticket: FleetTicket):
        try:
            result = yield from ticket._request.work()
        except SnapifyError as exc:
            self._finish(ticket, error=str(exc))
            return
        except Exception as exc:  # infrastructure death (card/endpoint gone)
            self._finish(ticket, error=f"{type(exc).__name__}: {exc}")
            return
        except BaseException as exc:  # teardown (thread killed / interrupted)
            self._finish(ticket, error=f"{type(exc).__name__}: {exc}")
            raise
        self._finish(ticket, result=result)

    def _finish(self, ticket: FleetTicket, *, result: Any = None,
                error: Optional[str] = None) -> None:
        if ticket.state in TICKET_TERMINAL:
            return
        ticket.state = FAILED if error is not None else DONE
        ticket.result = result
        ticket.error = error
        ticket.finished = self.sim.now
        if isinstance(result, OperationResult):
            op = OperationManager.of(self.sim).operations.get(result.op_id)
            if op is not None:
                op.fleet_key = ticket.key
        self.in_flight -= 1
        if ticket.card is not None:
            key = ticket.card.key
            held = self._per_card.get(key, 1) - 1
            if held:
                self._per_card[key] = held
            else:
                self._per_card.pop(key, None)
        (self.m_failed if error is not None else self.m_completed).inc()
        if ticket.card is not None:
            outcome = "failed" if error is not None else "completed"
            self._registry.counter(
                f"{self.name}.card.{ticket.card.key}.{outcome}"
            ).inc()
        if ticket.service_time is not None:
            self._service_hist.observe(ticket.service_time)
        telem = getattr(self.sim, "snapify_telemetry", None)
        if telem is not None:
            telem.observe_ticket(ticket)
        self.sim.trace.emit("fleet.finish", key=ticket.key, kind=ticket.kind,
                            card=ticket.card.key if ticket.card else None,
                            state=ticket.state, error=error)
        ticket.done.succeed(ticket)
        self._pump()

    # -- health sweeps ---------------------------------------------------------
    def health_sweep(self, cards: Optional[Sequence[CardRef]] = None, *,
                     probe_bytes: int = 1024 * 1024,
                     priority: int = MAINTENANCE):
        """Sub-generator: probe every card (bounded by the same admission
        machinery as real operations) and return the :class:`HealthReport`.

        A probe is a small timed RAM-FS write on the card — it rides the
        card's memory bandwidth, so a card saturated by captures shows up
        as a straggler, and a dead card (failed, link down, OS gone) fails
        the probe outright.
        """
        if cards is None:
            if self.fleet is None:
                raise SnapifyError("health_sweep needs a fleet (or explicit cards)")
            cards = self.fleet.cards()
        sweep_id = next(self._probe_ids)
        tickets = [
            self.submit(f"probe{sweep_id}:{card.key}", "probe",
                        self._probe_work(card, probe_bytes),
                        card=card, priority=priority)
            for card in cards
        ]
        result = yield from self.collect(tickets)
        entries = []
        for card, ticket in zip(cards, tickets):
            if ticket.ok:
                entries.append(ticket.result)
            else:
                entries.append(CardHealth(card=card.key, ok=False,
                                          latency=None, error=ticket.error))
        report = HealthReport(entries, when=self.sim.now)
        self.sim.trace.emit("fleet.health", cards=len(entries),
                            failed=len(report.failed),
                            stragglers=len(report.stragglers()))
        return report

    def _probe_work(self, card: CardRef, probe_bytes: int):
        def work():
            phi = self.fleet.phi(card)
            if getattr(phi, "failed", False):
                raise SnapifyError(f"{card.key}: card failed")
            if phi.link_down:
                raise SnapifyError(f"{card.key}: PCIe link down")
            if phi.os is None:
                raise SnapifyError(f"{card.key}: no OS booted")
            path = f"/.fleet/probe{next(self._probe_ids)}"
            t0 = self.sim.now
            yield from phi.os.fs.write(path, probe_bytes)
            yield from phi.os.fs.read(path)
            phi.os.fs.unlink(path)
            return CardHealth(card=card.key, ok=True, latency=self.sim.now - t0)

        return work

    def describe(self) -> Dict[str, Any]:
        """JSON-safe manager snapshot (CLI, repro artifacts)."""
        return {
            "name": self.name,
            "max_in_flight": self.max_in_flight,
            "per_card_limit": self.per_card_limit,
            "submitted": len(self.tickets),
            "queue_depth": self.queue_depth(),
            "in_flight": self.in_flight,
            "hwm_in_flight": self.hwm_in_flight,
            "hwm_per_card": dict(self.hwm_per_card),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FleetManager {self.name} in_flight={self.in_flight}/"
                f"{self.max_in_flight} queued={self.queue_depth()}>")


# ---------------------------------------------------------------------------
# The standard mixed-load sweep (CLI, perfgate, fuzz scenario, README demo)
# ---------------------------------------------------------------------------


def fleet_sweep(fleet: Any, manager: FleetManager, *, ops_per_card: int = 4,
                buffer_bytes: int = 4 * 1024 * 1024):
    """Sub-generator: spawn ``ops_per_card`` offload processes on every card
    and drive a mixed checkpoint/swap/migrate load through ``manager``.

    Per card, slot ``s`` runs: a swap cycle when ``s % 3 == 1``, a migration
    to the node's next card when ``s % 3 == 2`` (a checkpoint when the node
    has only one card), and a background checkpoint otherwise.  Returns the
    collected :class:`FleetResult` over all ``cards * ops_per_card`` keyed
    operations.
    """
    from ..coi import OffloadBinary, OffloadFunction
    from ..testbed import offload_process
    from .api import snapify_t

    def _dead_card(card: CardRef, exc: Exception):
        # A card that dies while its processes are being spawned still owes
        # the batch a keyed outcome: route the spawn failure through the
        # normal ticket machinery as an immediately-failing work item.
        def work():
            raise SnapifyError(f"{card.key}: spawn failed: {exc}")
            yield  # pragma: no cover - makes this a generator

        return work

    cards = fleet.cards()
    prepared: List[Tuple[CardRef, int, Any]] = []
    for card in cards:
        server = fleet.server(card.node)
        for slot in range(ops_per_card):
            binary = OffloadBinary(
                name=f"fleet_{card.node}_{card.device}_{slot}.so",
                image_size=8 * 1024 * 1024,
                functions={"step": OffloadFunction("step", duration=0.05)},
            )
            try:
                coiproc, _ = yield from offload_process(
                    server, f"fl_{card.key}_s{slot}", binary,
                    device=card.device, buffers=[(buffer_bytes, slot + 1)],
                )
            except Exception as exc:
                prepared.append((card, slot, _dead_card(card, exc)))
            else:
                prepared.append((card, slot, coiproc))

    tickets: List[FleetTicket] = []
    for card, slot, coiproc in prepared:
        if callable(coiproc):  # spawn failed; coiproc is the failing work
            tickets.append(manager.submit(
                f"{card.key}/op{slot}", "checkpoint", coiproc, card=card,
            ))
            continue
        key = f"{card.key}/op{slot}"
        server = fleet.server(card.node)
        n_devices = len(server.node.phis)
        shape = slot % 3
        if shape == 1:
            tickets.append(manager.submit_swap_cycle(
                key, coiproc, server.engine(card.device),
                f"/fleet/swap_{card.key}_{slot}", card=card,
            ))
        elif shape == 2 and n_devices > 1:
            target = (card.device + 1) % n_devices
            tickets.append(manager.submit_migrate(
                key, coiproc, server.engine(target),
                f"/fleet/mig_{card.key}_{slot}", card=card,
            ))
        else:
            snap = snapify_t(snapshot_path=f"/fleet/ckpt_{card.key}_{slot}",
                             coiproc=coiproc)
            tickets.append(manager.submit_checkpoint(key, snap, card=card))

    result = yield from manager.collect(tickets)
    return result
