"""The Snapify card agent: the offload-process side of the protocol.

When the COI daemon receives a pause request it opens a pipe to the offload
process and signals it; the signal handler (installed by the Snapify-
modified COI runtime) attaches this agent to the pipe. The agent then
services pause / capture / resume requests arriving over the pipe:

* **pause** — quiesce the card side of every SCIF channel (drain cases 3
  and 4), then save the local store to the host snapshot directory through
  Snapify-IO.
* **capture** — run BLCR against a Snapify-IO descriptor so the context
  streams straight to the host file system.
* **resume** — release every lock taken by the pause.
"""

from __future__ import annotations


from ..blcr import cr_request_checkpoint
from ..blcr.plugins import PluginRegistry
from ..coi.process import CardRuntime
from ..obs.registry import MetricsRegistry
from ..osim.process import SimProcess
from ..snapify_io.library import snapifyio_open
from . import constants as c


def install_signal_handler(proc: SimProcess) -> None:
    """Install the SIGSNAPIFY handler that attaches the agent to the pipe
    the daemon just created (step 2 of Fig. 3)."""
    from ..osim import signals as sig

    def handler(proc: SimProcess, signum: int):
        pipe_end = proc.runtime.pop("snapify_pipe_pending", None)
        if pipe_end is None:
            return  # spurious signal
        proc.runtime["snapify_pipe"] = pipe_end
        yield from pipe_end.send({"t": c.PAUSE_ACK})
        yield from agent_loop(proc, pipe_end)

    proc.install_signal_handler(sig.SIGSNAPIFY, handler)


def attach_restored_agent(proc: SimProcess) -> None:
    """Restored offload processes get their pipe at creation (no signal)."""
    pipe_end = proc.runtime.pop("snapify_pipe_pending", None)
    if pipe_end is None:
        return
    proc.runtime["snapify_pipe"] = pipe_end
    proc.spawn_thread(_restored_agent(proc, pipe_end), name="snapify-agent", daemon=True)


def _restored_agent(proc: SimProcess, pipe_end):
    yield from pipe_end.send({"t": c.PAUSE_ACK})
    yield from agent_loop(proc, pipe_end)


def agent_loop(proc: SimProcess, pipe_end):
    """Service loop over the daemon pipe."""
    runtime: CardRuntime = proc.runtime["coi"]
    sim = proc.sim
    while True:
        msg = yield pipe_end.recv()
        op = msg["op"]
        parent = msg.get("span", 0)
        # Echoed in every reply so the daemon's monitor thread can route
        # the status to the operation that requested it.
        op_id = msg.get("op_id", 0)
        if op == "pause":
            sp = sim.trace.span("agent.pause", parent=parent, proc=proc.name)
            sub = sim.trace.span("agent.quiesce", parent=sp)
            yield from runtime.quiesce()
            sub.finish()
            # Checkpoint-plugin drain phase: at the DRAINED boundary every
            # registered plugin that overrides pre_pause gets to quiesce its
            # resource (e.g. wait out in-flight socket datagrams). With only
            # the built-ins registered this emits nothing — the golden trace
            # is untouched.
            drainers = PluginRegistry.for_process(proc).drain_plugins()
            if drainers:
                sub = sim.trace.span("agent.plugin_drain", parent=sp,
                                     plugins=len(drainers))
                for plugin in drainers:
                    hook = plugin.pre_pause(proc)
                    if hook is not None:
                        yield from hook
                sub.finish()
            sub = sim.trace.span("agent.localstore_save", parent=sp,
                                 node=msg.get("localstore_node", 0))
            try:
                ls_bytes = yield from save_local_store(
                    proc, runtime, msg["path"],
                    node=msg.get("localstore_node", 0), span=sub.span_id,
                )
            except Exception as exc:
                # The save target is gone (dead card, downed link, crashed
                # IO daemon). Un-pause and report a clean operation failure
                # instead of dying with the locks held — a silent agent
                # death leaves the host waiting on the pipe forever.
                runtime.release()
                sub.finish(error=str(exc))
                yield from pipe_end.send(
                    {"t": c.SNAPIFY_FAILED, "op_id": op_id,
                     "reason": f"local store save failed: {exc}"}
                )
                sp.finish(error=str(exc))
                continue
            sub.finish(bytes=ls_bytes)
            reply = {"t": c.PAUSE_COMPLETE, "localstore_bytes": ls_bytes,
                     "op_id": op_id}
            if drainers:
                reply["plugins_drained"] = len(drainers)
            yield from pipe_end.send(reply)
            sp.finish(localstore_bytes=ls_bytes)
        elif op == "capture":
            if msg.get("incremental"):
                sp = sim.trace.span("agent.capture_delta", parent=parent,
                                    proc=proc.name)
                yield from _capture_incremental(proc, pipe_end, msg, op_id, sp)
            else:
                sp = sim.trace.span("agent.capture", parent=parent, proc=proc.name)
                yield from _capture_with_retry(proc, pipe_end, msg, op_id, sp)
        elif op == "resume":
            sp = sim.trace.span("agent.resume", parent=parent, proc=proc.name)
            runtime.release()
            yield from pipe_end.send({"t": c.RESUME_ACK, "op_id": op_id})
            sp.finish()
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"snapify agent: unknown op {op!r}")


def _capture_with_retry(proc: SimProcess, pipe_end, msg, op_id: int, sp):
    """Sub-generator: run BLCR through Snapify-IO, surviving transient
    stream faults.

    A broken stream (connection reset, link flap, daemon restart) aborts
    the current descriptor — the remote keeps its durable partial — backs
    off per the daemon's :class:`~repro.snapify_io.resilience.RetryPolicy`,
    then re-opens with ``resume=True`` and re-runs the checkpoint; the
    descriptor silently skips the bytes already durable. Exhausted retries
    report ``SNAPIFY_FAILED`` over the pipe (a clean operation failure on
    the host) rather than killing the agent. The fault-free first attempt
    is event-for-event identical to the pre-resilience code.
    """
    from ..snapify_io.daemon import SnapifyIODaemon
    from ..snapify_io.resilience import TRANSIENT_ERRORS, RetryPolicy

    sim = proc.sim
    path = c.context_path(msg["path"])
    policy = RetryPolicy.from_params(SnapifyIODaemon.of(proc.os).params)
    attempts = max(1, policy.attempts)
    last_exc = None
    for attempt in range(1, attempts + 1):
        fd = None
        try:
            fd = yield from snapifyio_open(
                proc.os, node=0, path=path, mode="w", proc=proc,
                span=sp.span_id, resume=attempt > 1,
            )
            done = cr_request_checkpoint(proc, fd)
            ctx = yield done
            yield from fd.finish()
        except TRANSIENT_ERRORS as exc:
            last_exc = exc
            if fd is not None and not fd.closed:
                fd.close()  # abort marker: the remote keeps its partial
            if attempt == attempts:
                break
            MetricsRegistry.of(sim).counter("snapifyio.retries").inc()
            sim.trace.emit("io.retry", path=path, channel="snapifyio",
                           attempt=attempt, error=str(exc))
            yield from policy.backoff(sim, attempt)
            continue
        reply = {"t": c.CAPTURE_COMPLETE, "image_bytes": ctx.image_bytes,
                 "op_id": op_id, "attempts": attempt, "channel": "snapifyio"}
        if ctx.plugin_images:
            reply["plugins"] = len(ctx.plugin_images)
        yield from pipe_end.send(reply)
        sp.finish(bytes=ctx.image_bytes)
        return
    yield from pipe_end.send(
        {"t": c.SNAPIFY_FAILED, "op_id": op_id,
         "reason": f"capture stream failed after {attempts} attempts: {last_exc}"}
    )
    sp.finish(error=str(last_exc))


def _capture_incremental(proc: SimProcess, pipe_end, msg, op_id: int, sp):
    """Sub-generator: dirty-page capture into the in-memory partner tier.

    Epoch 0 ships the full base image, later epochs only the pages written
    since the previous capture (the dirty bitmap decides). The image never
    touches a channel here: it is committed to the local card's memory tier
    copy, then replicated to a partner card — NFS demotion is somebody
    else's background ticket. Failures (dead process, tier full) report
    ``SNAPIFY_FAILED`` over the pipe like any other capture failure.
    """
    from ..blcr import cr_request_checkpoint_incremental
    from ..hw.memory import MemoryExhausted
    from ..sim.errors import SimError
    from ..snapify_io.memtier import MemoryTier, TierError

    sim = proc.sim
    path = msg["path"]
    try:
        done = cr_request_checkpoint_incremental(proc, path, fd=None)
        image = yield done
    except SimError as exc:
        yield from pipe_end.send(
            {"t": c.SNAPIFY_FAILED, "op_id": op_id,
             "reason": f"incremental capture failed: {exc}"}
        )
        sp.finish(error=str(exc))
        return
    # Delta harvested and sealed: tell the host before the (potentially
    # slow) partner replication so the operation can show REPLICATING.
    yield from pipe_end.send(
        {"t": c.CAPTURE_REPLICATING, "op_id": op_id, "epoch": image.epoch,
         "delta_bytes": image.delta_bytes}
    )
    tier = MemoryTier.of(sim)
    try:
        placement = yield from tier.store(proc.os, path, image,
                                          span=sp.span_id)
    except (TierError, MemoryExhausted) as exc:
        yield from pipe_end.send(
            {"t": c.SNAPIFY_FAILED, "op_id": op_id,
             "reason": f"memory tier store failed: {exc}"}
        )
        sp.finish(error=str(exc))
        return
    yield from pipe_end.send(
        {"t": c.CAPTURE_COMPLETE, "image_bytes": image.logical_bytes,
         "delta_bytes": image.delta_bytes, "epoch": image.epoch,
         "incremental": True, "tier": "memtier",
         "partner": placement.get("partner"), "op_id": op_id,
         "attempts": 1, "channel": "memtier"}
    )
    sp.finish(epoch=image.epoch, delta_bytes=image.delta_bytes,
              logical_bytes=image.logical_bytes)


def save_local_store(proc: SimProcess, runtime: CardRuntime, snapshot_path: str,
                     node: int = 0, span: int = 0):
    """Sub-generator: stream the local store (COI buffer files) through
    Snapify-IO to SCIF node ``node`` — the host (0) for checkpoint/swap, or
    the migration target card directly ("the offload process copies its
    local store directly from its current coprocessor to another
    coprocessor using Snapify-IO", §7). Returns the byte count.

    This does not use any of the quiesced SCIF channels between the host
    process and the offload process — Snapify-IO has its own connection.
    """
    meta = {"buffers": {}}
    total = 0
    fd = yield from snapifyio_open(
        proc.os, node=node, path=c.localstore_path(snapshot_path), mode="w", proc=proc,
        span=span,
    )
    for buf_id, entry in sorted(runtime._buffers.items()):
        f = runtime.buffer_file(buf_id)
        # Read the RAM-FS file, then stream it out.
        yield from proc.os.fs.read(entry["path"])
        yield from fd.write(entry["size"])
        meta["buffers"][buf_id] = {
            "size": entry["size"], "path": entry["path"], "payload": f.payload,
        }
        total += entry["size"]
    yield from fd.write(1, record=meta)
    yield from fd.finish()
    return total
