"""Shared constants of the Snapify protocol."""

#: Size of the offload runtime libraries MPSS keeps on the host file system.
#: snapify_pause() copies them into the snapshot directory (cheap host-local
#: copy, per the paper's footnote 2); restore streams them back to the card.
COI_LIBS_SIZE = 120 * 1024 * 1024

#: Canonical host file where the MPSS runtime libraries live.
LIBS_SOURCE_PATH = "/opt/mpss/coi_runtime_libs"

#: File names inside a snapshot directory.
CONTEXT_FILE = "context"
LOCALSTORE_FILE = "localstore"
LIBS_FILE = "libs"
#: Demoted incremental chain (base + deltas), written by the memory tier's
#: background demotion ticket — never on the capture critical path.
CHAIN_FILE = "chain"

#: Daemon-connection request type for all Snapify operations.
SERVICE = "snapify.service"

# Ops carried in SERVICE requests (host -> daemon).
OP_PAUSE_INIT = "pause-init"
OP_PAUSE_GO = "pause-go"
OP_CAPTURE = "capture"
OP_RESUME = "resume"
OP_RESTORE = "restore"

# Pipe messages (daemon <-> offload agent) and relayed statuses.
PAUSE_ACK = "snapify.pause-ack"
SNAPIFY_FAILED = "snapify.failed"
PAUSE_COMPLETE = "snapify.pause-complete"
CAPTURE_COMPLETE = "snapify.capture-complete"
RESUME_ACK = "snapify.resume-ack"
#: Intermediate capture status: the delta image is captured and committed
#: locally; the partner replica is still streaming. Relayed to the host so
#: the operation can surface a REPLICATING sub-state.
CAPTURE_REPLICATING = "snapify.capture-replicating"

#: Monitor thread polling interval (the daemon's dedicated Snapify monitor
#: thread "keeps polling the pipes to the offload processes").
MONITOR_POLL_INTERVAL = 200e-6


def context_path(snapshot_path: str) -> str:
    return f"{snapshot_path}/{CONTEXT_FILE}"


def localstore_path(snapshot_path: str) -> str:
    return f"{snapshot_path}/{LOCALSTORE_FILE}"


def libs_path(snapshot_path: str) -> str:
    return f"{snapshot_path}/{LIBS_FILE}"


def chain_path(snapshot_path: str) -> str:
    return f"{snapshot_path}/{CHAIN_FILE}"
