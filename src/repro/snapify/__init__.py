"""Snapify: consistent snapshots of offload applications (the paper's core).

The API (:mod:`repro.snapify.api`) implements Table 1; the daemon service
and monitor thread live in :mod:`repro.snapify.monitor`; the card agent in
:mod:`repro.snapify.agent`; and the §5 use cases (checkpoint/restart,
swapping, migration) in :mod:`repro.snapify.usecases`.
"""

from . import constants
from .api import (
    snapify_capture,
    snapify_pause,
    snapify_restore,
    snapify_resume,
    snapify_t,
    snapify_wait,
)
from .cli import MIGRATE, SWAP_IN, SWAP_OUT, install_cli_handler, snapify_command
from .fleet import (
    BACKGROUND,
    MAINTENANCE,
    SWAP,
    CardHealth,
    CardRef,
    FleetManager,
    FleetRequest,
    FleetResult,
    FleetTicket,
    HealthReport,
    fleet_sweep,
)
from .monitor import SnapifyError, SnapifyService, handle_service
from .ops import (
    OperationManager,
    OperationResult,
    SnapifyOperation,
    capture_sequence,
    snapshot_application,
)
from .usecases import (
    RestartResult,
    checkpoint_offload_app,
    host_context_path,
    restart_offload_app,
    snapify_migration,
    snapify_swapin,
    snapify_swapout,
    transfer_snapshot,
)

__all__ = [
    "BACKGROUND",
    "CardHealth",
    "CardRef",
    "FleetManager",
    "FleetRequest",
    "FleetResult",
    "FleetTicket",
    "HealthReport",
    "MAINTENANCE",
    "MIGRATE",
    "OperationManager",
    "OperationResult",
    "RestartResult",
    "SWAP",
    "SWAP_IN",
    "SWAP_OUT",
    "fleet_sweep",
    "SnapifyError",
    "SnapifyOperation",
    "SnapifyService",
    "capture_sequence",
    "checkpoint_offload_app",
    "snapshot_application",
    "constants",
    "handle_service",
    "host_context_path",
    "install_cli_handler",
    "restart_offload_app",
    "snapify_capture",
    "snapify_command",
    "snapify_migration",
    "snapify_pause",
    "snapify_restore",
    "snapify_resume",
    "snapify_swapin",
    "snapify_swapout",
    "snapify_t",
    "snapify_wait",
    "transfer_snapshot",
]
