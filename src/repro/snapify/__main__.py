"""``python -m repro.snapify`` — the snapify command-line front end."""

import sys

from ..obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
