"""The three Snapify use cases of §5: checkpoint/restart, swapping, migration.

These compose the five API calls exactly as the paper's Figures 5-7 do. All
functions are sub-generators meant to run in the context of the host
process (the ``snapify`` CLI and the BLCR callback both end up here).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..blcr import cr_checkpoint, cr_restart
from ..coi.engine import COIEngine
from ..coi.process import COIProcess
from ..osim.fd import RegularFileFD
from ..osim.process import OSInstance, SimProcess
from .api import (
    snapify_restore,
    snapify_resume,
    snapify_t,
)
from ..snapify_io.resilience import TransferManager
from .ops import TRANSFERRING, OperationManager, capture_sequence

if TYPE_CHECKING:  # pragma: no cover
    pass

HOST_CONTEXT_FILE = "host_context"


def host_context_path(snapshot_path: str) -> str:
    return f"{snapshot_path}/{HOST_CONTEXT_FILE}"


# ---------------------------------------------------------------------------
# Checkpoint and restart (Fig. 5)
# ---------------------------------------------------------------------------


def checkpoint_offload_app(snap: snapify_t):
    """Sub-generator: Fig. 5(a)'s ``snapify_blcr_callback`` checkpoint path.

    Pauses the offload process, captures it asynchronously, snapshots the
    host process with host-side BLCR in the meantime, waits for the offload
    capture, and resumes. Returns (host_ctx, timing dict).
    """
    coiproc = snap.coiproc
    host_proc = coiproc.host_proc
    sim = coiproc.sim
    t0 = sim.now
    root = sim.trace.span("snapify.checkpoint", parent=snap.span,
                          pid=coiproc.offload_proc.pid, proc=host_proc.name)
    snap.span = root
    OperationManager.of(sim).begin("checkpoint", snap, span=root)

    box = {}

    def _host_snapshot():
        # Host snapshot proceeds in parallel with the offload capture.
        t_host0 = sim.now
        sp = sim.trace.span("checkpoint.host_snapshot", parent=root,
                            proc=host_proc.name)
        # Host BLCR context writes are effectively synchronous (kernel-side
        # direct writes): the disk, not the page cache, paces the host snapshot.
        fd = RegularFileFD(sim, host_proc.os.fs,
                           host_context_path(snap.snapshot_path), "w", sync=True)
        host_ctx = yield from cr_checkpoint(host_proc, fd)
        fd.close()
        snap.timings["host_snapshot"] = sim.now - t_host0
        snap.sizes["host_snapshot"] = host_ctx.image_bytes
        sp.finish(bytes=host_ctx.image_bytes)
        box["host_ctx"] = host_ctx

    yield from capture_sequence(snap, between=_host_snapshot())
    snap.timings["checkpoint_total"] = sim.now - t0
    root.finish(elapsed=snap.timings["checkpoint_total"])
    return box["host_ctx"]


def restart_offload_app(
    host_os: OSInstance,
    snapshot_path: str,
    engine: COIEngine,
) -> "RestartResult":
    """Sub-generator: Fig. 5's restart path, from nothing but the snapshot
    directory (both processes are assumed gone — the failure case).

    Restores the host process with BLCR, then takes the restart branch of
    the callback: ``snapify_restore`` + ``snapify_resume``. The host main
    program is started only after the offload process is reattached; it
    finds the new handle in ``proc.runtime['coi_restored_handle']``.
    """
    sim = host_os.sim
    t0 = sim.now
    root = sim.trace.span("snapify.restart", path=snapshot_path)

    sp = sim.trace.span("restart.host_restart", parent=root)
    fd = RegularFileFD(sim, host_os.fs, host_context_path(snapshot_path), "r")
    host_proc = yield from cr_restart(host_os, fd, start=False)
    fd.close()
    t_host = sim.now - t0
    sp.finish()

    snap = snapify_t(snapshot_path=snapshot_path, span=root)
    OperationManager.of(sim).begin("restart", snap, span=root)
    t1 = sim.now
    new_handle = yield from snapify_restore(snap, engine, host_proc)
    host_proc.runtime["coi_restored_handle"] = new_handle
    yield from snapify_resume(snap)
    t_offload = sim.now - t1

    host_proc.start()
    snap.timings["host_restart"] = t_host
    snap.timings["offload_restore"] = t_offload
    snap.timings["restart_total"] = sim.now - t0
    root.finish(elapsed=snap.timings["restart_total"])
    return RestartResult(host_proc=host_proc, coiproc=new_handle, snap=snap)


class RestartResult:
    def __init__(self, host_proc: SimProcess, coiproc: COIProcess, snap: snapify_t):
        self.host_proc = host_proc
        self.coiproc = coiproc
        self.snap = snap

    @property
    def result(self):
        """The restart's typed :class:`~repro.snapify.ops.OperationResult`."""
        return snap_result(self.snap)


def snap_result(snap: snapify_t):
    """The OperationResult of a handle's (terminal) operation, or None."""
    return snap.op.result if snap.op is not None else None


# ---------------------------------------------------------------------------
# Process swapping (Fig. 6)
# ---------------------------------------------------------------------------


def snapify_swapout(snapshot_path: str, coiproc: COIProcess,
                    localstore_node: int = 0, parent: Optional[object] = None):
    """Sub-generator: Fig. 6's swap-out — pause, capture with terminate,
    wait. Returns the ``snapify_t`` representing the swapped-out process.

    ``localstore_node`` routes the local-store save: 0 (the host) for plain
    swapping; a target card's SCIF id for migration's direct path.
    ``parent`` optionally roots the operation's span tree under an enclosing
    span (migration passes its own)."""
    sim = coiproc.sim
    root = sim.trace.span("snapify.swapout", parent=parent,
                          pid=coiproc.offload_proc.pid, path=snapshot_path,
                          proc=coiproc.host_proc.name)
    snap = snapify_t(snapshot_path=snapshot_path, coiproc=coiproc,
                     localstore_node=localstore_node, span=root)
    OperationManager.of(sim).begin("swapout", snap, span=root)
    t0 = sim.now
    yield from capture_sequence(snap, terminate=True)
    snap.timings["swapout_total"] = sim.now - t0
    root.finish(elapsed=snap.timings["swapout_total"])
    return snap


def snapify_swapin(snap: snapify_t, engine: COIEngine, host_proc: Optional[SimProcess] = None,
                   parent: Optional[object] = None):
    """Sub-generator: Fig. 6's swap-in — restore on ``engine`` and resume.
    Returns the new COIProcess handle."""
    sim = engine.sim
    t0 = sim.now
    if host_proc is None:
        if snap.coiproc is None:
            raise ValueError("swapin needs a host process")
        host_proc = snap.coiproc.host_proc
    root = sim.trace.span("snapify.swapin", parent=parent,
                          device=engine.device_id, proc=host_proc.name)
    snap.span = root
    OperationManager.of(sim).begin("swapin", snap, span=root)
    new = yield from snapify_restore(snap, engine, host_proc)
    yield from snapify_resume(snap)
    snap.timings["swapin_total"] = sim.now - t0
    root.finish(elapsed=snap.timings["swapin_total"])
    return new


# ---------------------------------------------------------------------------
# Process migration (Fig. 7)
# ---------------------------------------------------------------------------


def snapify_migration(coiproc: COIProcess, engine_to: COIEngine,
                      snapshot_path: str = "/tmp/snapify_migration"):
    """Sub-generator: Fig. 7 verbatim — swap out of the current device,
    swap in on ``engine_to``. Returns (new COIProcess, snapify_t)."""
    sim = coiproc.sim
    t0 = sim.now
    root = sim.trace.span("snapify.migration", pid=coiproc.offload_proc.pid,
                          device_to=engine_to.device_id, proc=coiproc.host_proc.name)
    # §7: "In process migration, the offload process copies its local store
    # directly from its current coprocessor to another coprocessor using
    # Snapify-IO. Thus the pause time in process migration is different."
    snap = yield from snapify_swapout(
        snapshot_path, coiproc, localstore_node=engine_to.phi.scif_node_id,
        parent=root,
    )
    new = yield from snapify_swapin(snap, engine_to, parent=root)
    snap.timings["migration_total"] = sim.now - t0
    root.finish(elapsed=snap.timings["migration_total"])
    return new, snap


# ---------------------------------------------------------------------------
# Resilient snapshot transfer (docs/architecture.md, "Transfer resilience")
# ---------------------------------------------------------------------------


def transfer_snapshot(
    src_os: OSInstance,
    dst_node: int,
    src_path: str,
    dst_path: str,
    *,
    kind: str = "transfer",
    manager: Optional[TransferManager] = None,
    policy=None,
    proc: Optional[SimProcess] = None,
    span=None,
):
    """Sub-generator: move one snapshot file to SCIF node ``dst_node``
    through the degradation chain (Snapify-IO, then NFS, then scp), as a
    first-class operation.

    The operation enters ``TRANSFERRING`` immediately and bounces through
    ``RETRYING`` for every failed attempt; the frozen
    :class:`~repro.snapify.ops.OperationResult` records which channel
    finally carried the snapshot and how many attempts it took. A transfer
    the whole chain cannot complete fails the operation with the aggregated
    cause chain and re-raises
    :class:`~repro.snapify_io.resilience.TransferFailed`.
    """
    sim = src_os.sim
    mgr = OperationManager.of(sim)
    op = mgr.begin(kind, span=span)
    op.transition(TRANSFERRING, path=dst_path, node=dst_node)
    tm = manager if manager is not None else TransferManager(policy=policy)
    try:
        yield from tm.send_file(
            src_os, dst_node, src_path, dst_path, proc=proc, op=op,
            span=int(getattr(span, "span_id", span) or 0),
        )
    except Exception as exc:
        op.fail(f"{type(exc).__name__}: {exc}")
        raise
    op.complete()
    return op.result
