"""Daemon-side Snapify service: request handling and the monitor thread.

The COI daemon is the pause coordinator ("there is one daemon per
coprocessor, and each daemon listens to the same fixed SCIF port number").
It keeps a list of active Snapify requests; a dedicated *monitor thread* —
created when the first request arrives and exiting when the list drains —
polls the pipes to the offload processes and relays their status updates
back to the requesting host processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict

from ..blcr import DeltaImage, cr_restart, cr_restore_context, reassemble
from ..coi.buffer import localstore_path as buffer_localstore_path
from ..coi.daemon import COIDaemon, DaemonEntry
from ..coi.services import COIError
from ..obs.registry import MetricsRegistry
from ..osim.pipes import DuplexPipe
from ..osim.process import SimProcess
from ..osim import signals as sig
from ..scif.endpoint import ScifEndpoint
from ..sim.errors import SimError
from ..snapify_io.library import snapifyio_open
from . import constants as c

if TYPE_CHECKING:  # pragma: no cover
    pass


class SnapifyError(SimError):
    """Snapify protocol failure, tagged with the operation it belongs to.

    ``op_id``/``phase`` locate the failure on the operation state machine
    (:mod:`repro.snapify.ops`); fuzz repro artifacts and wait-for graphs
    render them so a failed seed names the operation that wedged.
    """

    def __init__(self, message: str, *, op_id: Any = None, phase: Any = None):
        if op_id is not None:
            message = f"{message} [op {op_id} @ {phase or '?'}]"
        super().__init__(message)
        self.op_id = op_id
        self.phase = phase


@dataclass
class ActiveRequest:
    """One entry of the daemon's active-request list."""

    entry: DaemonEntry
    host_ep: ScifEndpoint
    op: str
    #: capture-only: terminate the offload process once the context is saved.
    terminate_after: bool = False
    #: span id of the host-side API span that issued the request (0 = untraced).
    span_id: int = 0
    #: correlation id of the host-side operation (0 = legacy/unkeyed); the
    #: id is echoed in every relayed status so concurrent operations on one
    #: endpoint demultiplex correctly.
    op_id: int = 0


class SnapifyService:
    """Per-daemon Snapify state (attached to ``daemon.runtime``)."""

    def __init__(self, daemon: COIDaemon):
        self.daemon = daemon
        self.sim = daemon.sim
        #: (offload pid, op id) -> request. Keying by operation, not just
        #: pid, is what lets several operations share one daemon (and even
        #: one offload process) without completion stealing.
        self.active: Dict[Any, ActiveRequest] = {}
        self.monitor_running = False
        self.monitor_spawn_count = 0
        reg = MetricsRegistry.of(self.sim)
        self.m_spawns = reg.counter("snapify.monitor.spawns")
        self.m_relays = reg.counter("snapify.monitor.relays")
        reg.gauge("snapify.monitor.active_requests", lambda: len(self.active))

    @staticmethod
    def of(daemon: COIDaemon) -> "SnapifyService":
        svc = daemon.runtime.get("snapify")
        if svc is None:
            svc = SnapifyService(daemon)
            daemon.runtime["snapify"] = svc
        return svc

    # -- monitor thread --------------------------------------------------------
    def ensure_monitor(self) -> None:
        """Per the paper: "Whenever a request is received and no monitor
        thread exists, the daemon creates a new monitor thread." """
        if self.monitor_running:
            return
        self.monitor_running = True
        self.monitor_spawn_count += 1
        self.m_spawns.inc()
        self.sim.trace.emit("monitor.spawn", daemon=self.daemon.proc.name,
                            active=len(self.active))
        self.daemon.proc.spawn_thread(self._monitor(), name="snapify-monitor", daemon=True)

    def _monitor(self):
        while self.active:
            by_pid: Dict[int, list] = {}
            for key, req in list(self.active.items()):
                by_pid.setdefault(key[0], []).append((key, req))
            for pid, reqs in by_pid.items():
                # Every request for one pid shares the entry's single pipe;
                # at most one message is drained per pid per tick and routed
                # to the operation whose id it carries.
                pipe = reqs[0][1].entry.pipe
                if pipe is None:
                    continue
                ok, msg = pipe.try_recv() if pipe.pending else (False, None)
                if ok:
                    key, req = self._match(reqs, msg)
                    yield from self._relay(key, req, msg)
                    continue
                # Unexpected death of the offload process while operations
                # are in flight: tell every host instead of letting it hang.
                if reqs[0][1].entry.state == "crashed":
                    for key, req in reqs:
                        if key not in self.active:
                            continue
                        yield from self._relay(
                            key, req,
                            {"t": c.SNAPIFY_FAILED,
                             "reason": f"offload pid {pid} died during {req.op}",
                             "op_id": key[1]},
                        )
            yield self.sim.timeout(c.MONITOR_POLL_INTERVAL)
        self.monitor_running = False
        self.sim.trace.emit("monitor.exit", daemon=self.daemon.proc.name)

    @staticmethod
    def _match(reqs, msg):
        """The (key, request) a pipe message belongs to: by the op id the
        agent echoed, falling back to the oldest request (legacy/unkeyed)."""
        target = msg.get("op_id", 0)
        if target:
            for key, req in reqs:
                if key[1] == target:
                    return key, req
        return reqs[0]

    def _relay(self, key, req: ActiveRequest, msg: Dict[str, Any]):
        """Forward a pipe status message to the requesting host process."""
        status = msg["t"]
        self.m_relays.inc()
        self.sim.trace.emit("monitor.relay", pid=key[0], status=status,
                            span=req.span_id)
        fwd = dict(msg)
        fwd.setdefault("op_id", req.op_id)
        yield from req.host_ep.send(fwd)
        if status == c.CAPTURE_COMPLETE and req.terminate_after:
            # Snapify marks the exit as expected so the daemon does not
            # misclassify the swap-out as a crash (the §3 hazard).
            self.daemon.terminate_offload(req.entry, expected=True)
        if status in (c.CAPTURE_COMPLETE, c.RESUME_ACK, c.SNAPIFY_FAILED):
            self.active.pop(key, None)


def handle_service(daemon: COIDaemon, ep: ScifEndpoint, msg: Dict[str, Any]):
    """Dispatch one SERVICE request (registered as a COI daemon extension)."""
    svc = SnapifyService.of(daemon)
    op = msg["op"]
    if op == c.OP_PAUSE_INIT:
        yield from _handle_pause_init(daemon, svc, ep, msg)
    elif op == c.OP_PAUSE_GO:
        yield from _handle_simple_forward(daemon, svc, ep, msg, "pause")
    elif op == c.OP_CAPTURE:
        yield from _handle_capture(daemon, svc, ep, msg)
    elif op == c.OP_RESUME:
        yield from _handle_simple_forward(daemon, svc, ep, msg, "resume")
    elif op == c.OP_RESTORE:
        yield from _handle_restore(daemon, svc, ep, msg)
    else:  # pragma: no cover - protocol error
        raise SnapifyError(f"unknown snapify op {op!r}")


def _entry(daemon: COIDaemon, pid: int) -> DaemonEntry:
    entry = daemon.entries.get(pid)
    if entry is None:
        raise SnapifyError(f"no offload process with pid {pid}")
    return entry


def _handle_pause_init(daemon: COIDaemon, svc: SnapifyService, ep, msg):
    """Steps 1-3 of Fig. 3: create the pipe, signal the offload process,
    wait for its acknowledgement, and relay it to the host."""
    entry = _entry(daemon, msg["pid"])
    sp = daemon.sim.trace.span("daemon.pause_init", parent=msg.get("span", 0),
                               pid=msg["pid"], proc=daemon.proc.name)
    pipe = DuplexPipe(daemon.sim, name=f"snapify-pipe:{msg['pid']}")
    entry.pipe = pipe.a
    entry.offload_proc.runtime["snapify_pipe_pending"] = pipe.b
    agent_thread = entry.offload_proc.deliver_signal(sig.SIGSNAPIFY)
    if agent_thread is not None:
        # The handler tail-calls into the agent service loop, which waits on
        # the pipe forever between operations — like the restored-agent
        # thread, it must not count against quiescence.
        agent_thread.daemon = True
    ack = yield pipe.a.recv()
    if ack.get("t") != c.PAUSE_ACK:
        raise SnapifyError(f"bad pause ack {ack!r}",
                           op_id=msg.get("op_id") or None, phase="pause")
    op_id = msg.get("op_id", 0)
    svc.active[(msg["pid"], op_id)] = ActiveRequest(
        entry=entry, host_ep=ep, op="pause", span_id=msg.get("span", 0),
        op_id=op_id)
    svc.ensure_monitor()
    yield from ep.send({"t": c.PAUSE_ACK, "op_id": op_id})
    sp.finish()


def _handle_simple_forward(daemon, svc: SnapifyService, ep, msg, pipe_op: str):
    """Forward pause-go / resume to the offload agent over the pipe; the
    monitor thread relays the completion status back to the host."""
    entry = _entry(daemon, msg["pid"])
    if entry.pipe is None:
        raise SnapifyError(f"{pipe_op}: no pipe to pid {msg['pid']} (pause first)",
                           op_id=msg.get("op_id") or None, phase=pipe_op)
    key = (msg["pid"], msg.get("op_id", 0))
    req = svc.active.get(key)
    if req is None:
        req = ActiveRequest(entry=entry, host_ep=ep, op=pipe_op, op_id=key[1])
        svc.active[key] = req
    req.op, req.host_ep = pipe_op, ep
    req.span_id = msg.get("span", 0)
    svc.ensure_monitor()
    yield from entry.pipe.send({"op": pipe_op, "path": msg.get("path"),
                                "localstore_node": msg.get("localstore_node", 0),
                                "span": msg.get("span", 0),
                                "op_id": key[1]})


def _handle_capture(daemon, svc: SnapifyService, ep, msg):
    entry = _entry(daemon, msg["pid"])
    if entry.pipe is None:
        raise SnapifyError("capture before pause",
                           op_id=msg.get("op_id") or None, phase="capture")
    key = (msg["pid"], msg.get("op_id", 0))
    req = svc.active.get(key) or ActiveRequest(entry=entry, host_ep=ep,
                                               op="capture", op_id=key[1])
    req.op, req.host_ep = "capture", ep
    req.terminate_after = bool(msg.get("terminate"))
    req.span_id = msg.get("span", 0)
    svc.active[key] = req
    svc.ensure_monitor()
    fwd = {"op": "capture", "path": msg["path"],
           "span": msg.get("span", 0),
           "op_id": key[1]}
    if msg.get("incremental"):
        # Present only when set: the default pipe message stays identical.
        fwd["incremental"] = True
    yield from entry.pipe.send(fwd)


def _handle_restore(daemon: COIDaemon, svc: SnapifyService, ep, msg):
    """§4.3: copy libs + local store back to the card on the fly, restart
    the offload process from its context via BLCR/Snapify-IO, and hand the
    reconnect port back to the host."""
    path = msg["path"]
    phi_os = daemon.phi_os
    sp = daemon.sim.trace.span("daemon.restore", parent=msg.get("span", 0),
                               path=path, proc=daemon.proc.name)

    # 1. Runtime libraries stream host -> card (charged, then dropped: they
    #    are dynamically mapped, not duplicated in the RAM-FS model).
    sub = daemon.sim.trace.span("daemon.restore.libs_in", parent=sp)
    libs_fd = yield from snapifyio_open(phi_os, 0, c.libs_path(path), "r",
                                        span=sub.span_id)
    yield from _drain_read(libs_fd)
    libs_fd.close()
    sub.finish()

    # 2. Local store files are recreated on the card RAM-FS. For migration
    #    the pause already staged them on THIS card (the paper's direct
    #    device-to-device path), so they only need a local copy; otherwise
    #    they stream in from the SCIF node that holds them (usually 0).
    #    Files land in a snapshot-keyed staging directory, NOT at their
    #    original /tmp/coi_procs/<pid> paths: a live process on this card
    #    may legitimately own that pid, and its exit cleanup would unlink
    #    the restored bytes out from under us (pids are only unique per
    #    card). They move to the restored process's own pid directory once
    #    that pid exists (step 3).
    ls_node = msg.get("localstore_node", 0)
    my_node = daemon.phi.scif_node_id
    staging = c.localstore_path(path)
    stage_dir = f"{staging}.restore"
    sub = daemon.sim.trace.span("daemon.restore.localstore_in", parent=sp,
                                node=ls_node)
    if ls_node == my_node and phi_os.fs.exists(staging):
        f = phi_os.fs.stat(staging)
        records = list(f.payload) if isinstance(f.payload, list) else []
        meta = records[-1] if records else {"buffers": {}}
        for buf_id, info in meta["buffers"].items():
            staged = f"{stage_dir}/buf_{buf_id}"
            phi_os.fs.create(staged)
            yield from phi_os.fs.write(staged, info["size"],
                                       payload=info["payload"])
        phi_os.fs.unlink(staging)  # release the staging copy
    else:
        ls_fd = yield from snapifyio_open(phi_os, ls_node, staging, "r",
                                          span=sub.span_id)
        records = yield from _drain_read(ls_fd)
        ls_fd.close()
        meta = records[-1] if records else {"buffers": {}}
        for buf_id, info in meta["buffers"].items():
            staged = f"{stage_dir}/buf_{buf_id}"
            phi_os.fs.create(staged)
            yield from phi_os.fs.write(staged, info["size"],
                                       payload=info["payload"])
    sub.finish()

    # 3. Restart the process image. Incremental snapshots live in the
    #    memory tier (local or partner copy; NFS chain file once demoted):
    #    reassemble base + deltas and restore the context in place. Classic
    #    snapshots restart straight off the host file system, untouched.
    from ..snapify_io.memtier import MemoryTier

    sub = daemon.sim.trace.span("daemon.restore.cr_restart", parent=sp)
    port = next(daemon._ports)
    tier = MemoryTier.peek(daemon.sim)
    chain = tier.lookup(path) if tier is not None else None
    if chain is not None:
        images, _sources = yield from tier.fetch(path, phi_os)
        if images is None:
            # Every memory copy is gone but the chain was demoted: stream
            # the chain file back from the host through Snapify-IO.
            chain_fd = yield from snapifyio_open(phi_os, 0, c.chain_path(path),
                                                 "r", span=sub.span_id)
            records = yield from _drain_read(chain_fd)
            chain_fd.close()
            images = [r for r in records if isinstance(r, DeltaImage)]
        ctx = reassemble(images)
        proc = yield from cr_restore_context(phi_os, ctx, start=False)
    else:
        ctx_fd = yield from snapifyio_open(phi_os, 0, c.context_path(path), "r",
                                           span=sub.span_id)
        proc = yield from cr_restart(phi_os, ctx_fd, start=False)
        ctx_fd.close()
    sub.finish()
    proc.store["_listen_port"] = port

    # The restored process's pid now exists: claim the staged local store
    # under it (metadata-only renames, instantaneous) and point the
    # process's buffer table at the new paths.
    buffers = proc.store.get("buffers", {})
    for buf_id, info in sorted(meta["buffers"].items()):
        dst = buffer_localstore_path(proc.pid, buf_id)
        phi_os.fs.rename(f"{stage_dir}/buf_{buf_id}", dst)
        if buf_id in buffers:
            buffers[buf_id]["path"] = dst

    pipe = DuplexPipe(daemon.sim, name=f"snapify-pipe:{proc.pid}")
    proc.runtime["snapify_pipe_pending"] = pipe.b
    listening = daemon.sim.event(f"listening:{proc.name}")
    proc.runtime["listening"] = listening

    binary = proc.store.get("_coi_binary")
    host_proc: SimProcess = msg["host_proc"]
    entry = DaemonEntry(host_proc=host_proc, offload_proc=proc, port=port, binary=binary)
    entry.pipe = pipe.a
    daemon.entries[proc.pid] = entry
    daemon._watch(entry)

    proc.start()
    try:
        yield listening
        ack = yield pipe.a.recv()  # restored agent announces itself
    except COIError as exc:
        # The restored process died before reconnecting (e.g. a torn
        # snapshot whose local store cannot back the buffer table it
        # captured). Reap it and report a clean failure to the host
        # instead of waiting on the rendezvous forever.
        if proc.alive:
            proc.terminate(code=1)
        sp.finish(error=str(exc))
        yield from ep.send({"t": c.SNAPIFY_FAILED, "op_id": msg.get("op_id", 0),
                            "reason": f"restore: {exc}"})
        return
    if ack.get("t") != c.PAUSE_ACK:
        raise SnapifyError(f"restored agent bad hello: {ack!r}",
                           op_id=msg.get("op_id") or None, phase="restore")
    op_id = msg.get("op_id", 0)
    svc.active[(proc.pid, op_id)] = ActiveRequest(
        entry=entry, host_ep=ep, op="restore", span_id=msg.get("span", 0),
        op_id=op_id)
    svc.ensure_monitor()
    yield from ep.send({"t": "restore-complete", "port": port, "pid": proc.pid,
                        "offload_proc": proc, "op_id": op_id})
    sp.finish(pid=proc.pid)


def _drain_read(fd):
    """Sub-generator: read a Snapify-IO stream to EOF; returns its records."""
    records = []
    while True:
        rec = yield from fd.read(4 * 1024 * 1024)
        if rec is None:
            break
        records.append(rec)
    return records


# Register with the COI daemon's extension dispatch.
COIDaemon.extensions[c.SERVICE] = handle_service
