"""The ``snapify`` command-line utility (§5, "Command-line tools").

The real utility takes the host process PID and a command (swap-out,
swap-in, migrate), signals the host process, and passes the command through
a pipe; a Snapify-installed signal handler in the host process then invokes
the §5 functions. We model the utility as :func:`snapify_command`: an
external actor (a job scheduler, a test) that drives a running offload
application without its cooperation — the "application-transparent" path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..coi.engine import COIEngine
from ..osim import signals as sig
from ..osim.process import SimProcess
from ..sim.events import Event
from .api import snapify_t
from .monitor import SnapifyError
from .usecases import snapify_migration, snapify_swapin, snapify_swapout

if TYPE_CHECKING:  # pragma: no cover
    pass

SWAP_OUT = "swap-out"
SWAP_IN = "swap-in"
MIGRATE = "migrate"


def install_cli_handler(host_proc: SimProcess) -> None:
    """Install Snapify's host-process signal handler.

    The handler reads the pending command from the utility's pipe (modeled
    as ``runtime['snapify_cli_cmd']``) and runs the matching §5 function.
    The current COIProcess handle is found at ``runtime['coi_handle']`` —
    the convention our offload-application framework maintains.
    """

    def handler(proc: SimProcess, signum: int):
        cmd = proc.runtime.pop("snapify_cli_cmd", None)
        if cmd is None:
            return
        kind, engine, path, done = cmd
        # The application gate (if the program installed one) keeps app
        # threads out of COI operations while the handle is being replaced.
        # Swap-out holds it until the matching swap-in: a swapped-out
        # process is *supposed* to make no progress.
        gate = proc.runtime.get("app_gate")
        try:
            if kind == SWAP_OUT:
                if gate is not None:
                    yield gate.acquire(owner="snapify-cli")
                coiproc = proc.runtime["coi_handle"]
                snap = yield from snapify_swapout(path, coiproc)
                proc.runtime["swapped_out"] = snap
                done.succeed(snap)
            elif kind == SWAP_IN:
                snap = proc.runtime.pop("swapped_out", None)
                if snap is None:
                    raise SnapifyError("swap-in: nothing swapped out")
                new = yield from snapify_swapin(snap, engine, proc)
                proc.runtime["coi_handle"] = new
                if gate is not None:
                    gate.release()
                done.succeed(new)
            elif kind == MIGRATE:
                if gate is not None:
                    yield gate.acquire(owner="snapify-cli")
                try:
                    coiproc = proc.runtime["coi_handle"]
                    new, snap = yield from snapify_migration(coiproc, engine, path)
                    proc.runtime["coi_handle"] = new
                finally:
                    if gate is not None:
                        gate.release()
                done.succeed(new)
            else:
                raise SnapifyError(f"snapify cli: unknown command {kind!r}")
        except SnapifyError as exc:
            if not done.triggered:
                done.fail(exc)

    host_proc.install_signal_handler(sig.SIGUSR1, handler)


def snapify_command(
    host_proc: SimProcess,
    command: str,
    engine: Optional[COIEngine] = None,
    snapshot_path: str = "/tmp/snapify_cli",
) -> Event:
    """Issue a command to a running host process, like the real utility:
    signal it and pass the command through a pipe. Returns an event that
    succeeds with the result (a snapify_t for swap-out, a new handle for
    swap-in/migrate)."""
    if command in (SWAP_IN, MIGRATE) and engine is None:
        raise SnapifyError(f"{command} needs a target device (engine)")
    done = Event(host_proc.sim, name=f"snapify-cli:{command}")
    host_proc.runtime["snapify_cli_cmd"] = (command, engine, snapshot_path, done)
    host_proc.deliver_signal(sig.SIGUSR1)
    return done
