"""The Snapify API (Table 1 of the paper).

Five functions over a ``snapify_t`` handle:

* :func:`snapify_pause` — stop and drain every communication channel
  between the host process, the COI daemon and the offload process, then
  save the local store to the host snapshot directory. Blocking.
* :func:`snapify_capture` — snapshot the offload process via BLCR through
  Snapify-IO. **Non-blocking**: returns immediately; the handle's semaphore
  is posted on completion.
* :func:`snapify_wait` — wait for a pending capture.
* :func:`snapify_resume` — release every lock taken by the pause, on both
  sides.
* :func:`snapify_restore` — rebuild the offload process from a snapshot on
  a given device; returns the new ``COIProcess`` handle (the restored
  process stays blocked until ``snapify_resume``).

Each function records its wall-clock cost in ``snap.timings`` and sizes in
``snap.sizes`` — the raw material of Figures 10 and 11. When tracing is on,
each function also opens a :class:`~repro.sim.trace.Span` (parented on
``snap.span``, the use-case root) and forwards its span id inside the
SERVICE message, so the daemon- and agent-side work joins the same causal
tree; :class:`repro.obs.PhaseBreakdown` turns that tree into the paper's
Figure 9/10-style component tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..coi.engine import COIEngine
from ..coi.process import COIProcess
from ..coi import messages as m
from ..osim.process import SimProcess
from ..sim.sync import Semaphore
from . import constants as c
from .monitor import SnapifyError
from .ops import (
    CAPTURING,
    CAPTURING_DELTA,
    DRAINED,
    PAUSING,
    REPLICATING,
    REQUESTED,
    TRANSFERRING,
    OperationManager,
)


@dataclass
class snapify_t:
    """The API handle (``snapify_t`` in Table 1)."""

    #: m_snapshot_path: directory on the host file system.
    snapshot_path: str
    #: m_process: the COIProcess handle (replaced by snapify_restore).
    coiproc: Optional[COIProcess] = None
    #: m_sem: signaled when a non-blocking capture completes.
    sem: Optional[Semaphore] = None
    #: SCIF node the local store is saved to at pause (0 = the host; a
    #: card's SCIF id for migration's direct device-to-device path).
    localstore_node: int = 0
    #: Set when an in-flight capture failed (offload process died).
    error: Optional[str] = None
    #: Root span of the enclosing use case (swap-out, checkpoint, ...); the
    #: API calls parent their own spans on it. None/NULL_SPAN when untraced.
    span: Optional[Any] = None
    #: The in-flight :class:`~repro.snapify.ops.SnapifyOperation`. Use cases
    #: open it via ``OperationManager.begin``; a raw API call on a handle
    #: with no live operation auto-issues one. Its correlation id rides in
    #: every SERVICE message this handle sends.
    op: Optional[Any] = None
    #: Incremental mode: captures ship only dirty pages since the previous
    #: epoch and land in the in-memory partner tier instead of streaming the
    #: full image over Snapify-IO. Off by default — the classic full-capture
    #: path (and its trace) is untouched unless a caller opts in.
    incremental: bool = False
    #: Instrumentation for the benchmark harness.
    timings: Dict[str, float] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)

    def host_os(self):
        return self.coiproc.host_proc.os


def _ensure_libs_file(host_os) -> None:
    """MPSS keeps the runtime libraries on the host FS; materialize them."""
    if not host_os.fs.exists(c.LIBS_SOURCE_PATH):
        f = host_os.fs.create(c.LIBS_SOURCE_PATH)
        f.size = c.COI_LIBS_SIZE
        # MPSS maps these libraries for every offload launch; they are
        # permanently warm in the host page cache.
        f.in_page_cache = True


def snapify_pause(snap: snapify_t):
    """Sub-generator implementing §4.1's pause."""
    coiproc = snap.coiproc
    if coiproc is None or coiproc.dead:
        raise SnapifyError("pause: no live offload process in handle")
    sim = coiproc.sim
    mgr = OperationManager.of(sim)
    op = mgr.adopt(snap)
    op.transition(PAUSING)
    t0 = sim.now
    host_os = coiproc.host_proc.os
    host_name = coiproc.host_proc.name
    pid = coiproc.offload_proc.pid
    sp = sim.trace.span("snapify.pause", parent=snap.span, pid=pid, proc=host_name)

    # Step 0: copy the runtime libraries into the snapshot directory
    # (host-local copy; the footnote-2 optimization).
    sub = sim.trace.span("pause.libs_copy", parent=sp, proc=host_name)
    _ensure_libs_file(host_os)
    yield from host_os.fs.read(c.LIBS_SOURCE_PATH)
    yield from host_os.fs.write(c.libs_path(snap.snapshot_path), c.COI_LIBS_SIZE)
    snap.sizes["libs"] = c.COI_LIBS_SIZE
    sub.finish(bytes=c.COI_LIBS_SIZE)

    # Steps 1-3: service request; daemon opens the pipe and signals the
    # offload process; its ack is relayed back to us.
    sub = sim.trace.span("pause.handshake", parent=sp, proc=host_name)
    yield from coiproc.daemon_ep.send(
        {"type": c.SERVICE, "op": c.OP_PAUSE_INIT, "pid": pid,
         "span": sp.span_id, "op_id": op.op_id}
    )
    ack = yield from mgr.recv_reply(op, coiproc.daemon_ep)
    if ack.get("t") != c.PAUSE_ACK:
        raise op.fail_with(f"pause handshake failed: {ack!r}")
    sub.finish()

    # Step 4: tell the offload agent to drain its side, and drain ours
    # concurrently (cases 1-4 of §4.1).
    sub = sim.trace.span("pause.drain", parent=sp, proc=host_name)
    yield from coiproc.daemon_ep.send(
        {"type": c.SERVICE, "op": c.OP_PAUSE_GO, "pid": pid,
         "path": snap.snapshot_path, "localstore_node": snap.localstore_node,
         "span": sp.span_id, "op_id": op.op_id}
    )
    yield from coiproc.quiesce()
    done = yield from mgr.recv_reply(op, coiproc.daemon_ep)
    if done.get("t") == c.SNAPIFY_FAILED:
        sub.finish(error=done.get("reason"))
        sp.finish(error=done.get("reason"))
        raise op.fail_with(f"pause failed: {done.get('reason')}")
    if done.get("t") != c.PAUSE_COMPLETE:
        raise op.fail_with(f"pause did not complete: {done!r}")
    snap.sizes["local_store"] = done.get("localstore_bytes", 0)
    sub.finish(localstore_bytes=snap.sizes["local_store"])
    snap.timings["pause"] = sim.now - t0
    if done.get("plugins_drained"):
        # Extra plugins ran their drain hooks at the boundary; record the
        # count on the DRAINED transition (key absent for built-in-only
        # registries, so legacy traces are untouched).
        op.transition(DRAINED, localstore_bytes=snap.sizes["local_store"],
                      plugins_drained=done["plugins_drained"])
    else:
        op.transition(DRAINED, localstore_bytes=snap.sizes["local_store"])
    sp.finish(elapsed=snap.timings["pause"])
    sim.trace.emit("snapify.pause", pid=pid, path=snap.snapshot_path,
                   elapsed=snap.timings["pause"])


def snapify_capture(snap: snapify_t, terminate: bool):
    """Sub-generator implementing §4.1's capture. Non-blocking: returns as
    soon as the request is on the wire; ``snap.sem`` is posted when the
    snapshot is saved (use :func:`snapify_wait`)."""
    coiproc = snap.coiproc
    if coiproc is None or not coiproc.paused:
        raise SnapifyError("capture: call snapify_pause first")
    sim = coiproc.sim
    mgr = OperationManager.of(sim)
    op = mgr.adopt(snap)
    op.terminate = op.terminate or terminate
    snap.sem = Semaphore(sim, value=0, name="snapify.capture")
    t0 = sim.now
    sp = sim.trace.span("snapify.capture", parent=snap.span,
                        pid=coiproc.offload_proc.pid, terminate=terminate,
                        proc=coiproc.host_proc.name)
    if snap.incremental:
        op.incremental = True
        op.transition(CAPTURING_DELTA, terminate=terminate)
    else:
        op.transition(CAPTURING, terminate=terminate)
    msg = {"type": c.SERVICE, "op": c.OP_CAPTURE, "pid": coiproc.offload_proc.pid,
           "path": snap.snapshot_path, "terminate": terminate,
           "span": sp.span_id, "op_id": op.op_id}
    if snap.incremental:
        # Key present only when set: default captures send the exact message
        # they always did (golden-trace byte-identity).
        msg["incremental"] = True
    yield from coiproc.daemon_ep.send(msg)

    def _completion_waiter():
        # Correlated receive: with several captures in flight on this
        # endpoint, each waiter sees only the completion carrying its own
        # operation id (the old bare recv() stole whichever came first).
        while True:
            try:
                done = yield from mgr.recv_reply(op, coiproc.daemon_ep)
            except Exception as exc:  # daemon/card died under the capture
                snap.error = f"lost the COI daemon during capture: {exc}"
                op.fail(snap.error)
                sp.finish(error="daemon-lost")
                snap.sem.post()
                return
            if done.get("t") != c.CAPTURE_REPLICATING:
                break
            # Intermediate status from an incremental capture: the delta is
            # committed locally; the partner replica is streaming.
            if op.state == CAPTURING_DELTA:
                op.transition(REPLICATING, epoch=done.get("epoch"),
                              bytes=done.get("delta_bytes"))
        if done.get("t") != c.CAPTURE_COMPLETE:
            # Surface the failure through the semaphore: snapify_wait raises.
            snap.error = done.get("reason", repr(done))
            op.fail(snap.error)
            sp.finish(error="capture-failed")
            snap.sem.post()
            return
        snap.sizes["offload_snapshot"] = done.get("image_bytes", 0)
        snap.timings["capture"] = sim.now - t0
        # Transfer provenance from the agent: which channel carried the
        # snapshot and how many attempts the stream took.
        op.channel = done.get("channel", op.channel or "snapifyio")
        op.attempts = done.get("attempts", op.attempts)
        op.plugin_images = done.get("plugins", 0)
        if done.get("incremental"):
            # image_bytes above is the LOGICAL image size; what actually
            # moved is the delta. Record both — phase/throughput math and
            # `snapify top` must not misattribute one as the other.
            op.incremental = True
            op.delta_bytes = done.get("delta_bytes", 0)
            op.logical_bytes = done.get("image_bytes", 0)
            op.tier = done.get("tier")
            snap.sizes["offload_delta"] = op.delta_bytes
        shipped = done.get("delta_bytes") if done.get("incremental") \
            else snap.sizes["offload_snapshot"]
        op.transition(TRANSFERRING, bytes=shipped)
        sp.finish(bytes=snap.sizes["offload_snapshot"])
        sim.trace.emit("snapify.capture", pid=coiproc.offload_proc.pid,
                       terminate=terminate, bytes=snap.sizes["offload_snapshot"])
        if terminate:
            coiproc.mark_dead()
        snap.sem.post()

    coiproc.host_proc.spawn_thread(_completion_waiter(), name="snapify-capture-wait",
                                   daemon=True)


def snapify_wait(snap: snapify_t):
    """Sub-generator: block until the pending capture completes.

    Raises :class:`SnapifyError` if the capture failed (e.g. the offload
    process died under it)."""
    if snap.sem is None:
        raise SnapifyError("wait: no capture in flight")
    yield snap.sem.wait()
    if snap.error is not None:
        if snap.op is not None:
            raise snap.op.fail_with(f"capture failed: {snap.error}")
        raise SnapifyError(f"capture failed: {snap.error}")
    op = snap.op
    if op is not None and op.terminate and not op.is_terminal:
        # A terminating capture (swap-out) has no resume step to close the
        # operation; the snapshot being durable completes it here.
        op.complete()


def snapify_resume(snap: snapify_t):
    """Sub-generator implementing §4.2: release the pause on both sides."""
    coiproc = snap.coiproc
    if coiproc is None:
        raise SnapifyError("resume: empty handle")
    sim = coiproc.sim
    mgr = OperationManager.of(sim)
    op = mgr.adopt(snap)
    t0 = sim.now
    sp = sim.trace.span("snapify.resume", parent=snap.span,
                        pid=coiproc.offload_proc.pid, proc=coiproc.host_proc.name)
    yield from coiproc.daemon_ep.send(
        {"type": c.SERVICE, "op": c.OP_RESUME, "pid": coiproc.offload_proc.pid,
         "span": sp.span_id, "op_id": op.op_id}
    )
    ack = yield from mgr.recv_reply(op, coiproc.daemon_ep)
    if ack.get("t") != c.RESUME_ACK:
        raise op.fail_with(f"resume failed: {ack!r}")
    # The offload process released its locks and acknowledged; now ours.
    if coiproc.paused:
        coiproc.release()
    snap.timings["resume"] = sim.now - t0
    sp.finish(elapsed=snap.timings["resume"])
    sim.trace.emit("snapify.resume", pid=coiproc.offload_proc.pid)
    if not op.is_terminal:
        op.complete()


def snapify_restore(snap: snapify_t, engine: COIEngine, host_proc: SimProcess):
    """Sub-generator implementing §4.3: restore the offload process from
    ``snap.snapshot_path`` onto ``engine``'s device.

    Returns the new :class:`COIProcess` handle (also stored back into
    ``snap.coiproc``). The restored process stays quiesced until
    :func:`snapify_resume` is called.
    """
    sim = engine.sim
    mgr = OperationManager.of(sim)
    op = mgr.adopt(snap, kind="restore")
    t0 = sim.now
    old = snap.coiproc
    sp = sim.trace.span("snapify.restore", parent=snap.span,
                        device=engine.device_id, proc=host_proc.name)
    if op.state in (REQUESTED, CAPTURING):
        op.transition(TRANSFERRING, device=engine.device_id)

    daemon_ep = yield from engine.connect_daemon(host_proc)
    yield from daemon_ep.send(
        {"type": c.SERVICE, "op": c.OP_RESTORE, "path": snap.snapshot_path,
         "host_proc": host_proc, "localstore_node": snap.localstore_node,
         "span": sp.span_id, "op_id": op.op_id}
    )
    reply = yield from mgr.recv_reply(op, daemon_ep)
    if reply.get("t") != "restore-complete":
        raise op.fail_with(f"restore failed: {reply!r}")

    offload_proc = reply["offload_proc"]
    binary = offload_proc.store.get("_coi_binary")
    sub = sim.trace.span("restore.reconnect", parent=sp, proc=host_proc.name)
    eps = yield from engine.connect_channels(host_proc, reply["port"]).connect_all()
    new = COIProcess(
        host_proc=host_proc, engine=engine, binary=binary,
        offload_proc=offload_proc, daemon_ep=daemon_ep, eps=eps,
    )

    # Re-registration: ask the card for the new RDMA offsets and extend the
    # (old, new) lookup table so stale buffer handles keep working.
    rereg = yield from new.cmd_client.rpc({"type": m.BUFFER_REREGISTER})
    sub.finish()
    new_offsets: Dict[int, int] = rereg["offsets"]
    if old is not None:
        new.rdma_address_map.update(old.rdma_address_map)
        for buf_id, buf in old.buffers.items():
            if buf_id in new_offsets:
                current = old.translate_offset(buf.rdma_offset)
                new.rdma_address_map[current] = new_offsets[buf_id]
                new.buffers[buf_id] = buf
    else:
        from ..coi.buffer import COIBuffer

        for buf_id, info in offload_proc.store.get("buffers", {}).items():
            new.buffers[buf_id] = COIBuffer(
                buf_id=buf_id, size=info["size"],
                rdma_offset=new_offsets[buf_id], localstore_path=info["path"],
            )

    snap.coiproc = new
    snap.timings["restore"] = sim.now - t0
    op.pid = new.offload_proc.pid  # attribution now points at the restored pid
    sp.finish(pid=new.offload_proc.pid, elapsed=snap.timings["restore"])
    sim.trace.emit("snapify.restore", pid=new.offload_proc.pid,
                   device=engine.device_id, path=snap.snapshot_path)
    return new
