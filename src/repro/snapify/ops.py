"""Correlated Snapify operations: the control plane's state machine.

One *operation* is one end-to-end Snapify action (a checkpoint, a swap-out,
a restore…) identified by a per-simulator correlation id. The id rides in
every SERVICE message the host sends, the daemon keys its active-request
table by ``(pid, op_id)``, and the offload agent echoes the id back in its
replies — so any number of operations can be in flight on one daemon
endpoint (and across cards) and every completion lands on the operation
that asked for it. Before this layer, ``snapify_capture``'s completion
waiter did a bare ``daemon_ep.recv()`` and two overlapping captures would
steal each other's ``CAPTURE_COMPLETE``.

State machine (one way, monotone)::

    REQUESTED -> PAUSING -> DRAINED -> CAPTURING -> TRANSFERRING -> DONE
         \\           \\          \\          \\             \\       -> FAILED
                                              RETRYING <-> TRANSFERRING

* REQUESTED    — the operation exists; nothing is on the wire yet.
* PAUSING      — pause handshake + channel drain in progress.
* DRAINED      — every channel is quiesced; local store saved.
* CAPTURING    — the capture request is issued; BLCR streams the context
                 through Snapify-IO.
* TRANSFERRING — the snapshot data is durable (capture completion seen),
                 or — for restore-type operations — streaming back to the
                 card. The operation is finishing (resume handshake).
* RETRYING     — a transfer attempt hit a transient fault and is backing
                 off before re-entering TRANSFERRING (the only cycle the
                 machine permits; see ``docs/architecture.md``, "Transfer
                 resilience").
* DONE/FAILED  — terminal; :class:`OperationResult` is frozen.

Restore-type operations take the short path REQUESTED -> TRANSFERRING ->
DONE; a pause/resume cycle with no capture completes straight from
DRAINED. Every transition is emitted as an ``op.state`` trace record, so
phase breakdowns can be derived from operation state rather than per-call
boilerplate (:func:`repro.obs.phases.operation_timelines`).

Demultiplexing is cooperative, not threaded: ``recv_reply`` elects the
first caller on an endpoint as the *receiver*; replies addressed to other
operations are queued on their id and the owners woken. A single
in-flight operation degenerates to exactly one ``yield ep.recv()`` — the
same event sequence the un-correlated code produced, which is what keeps
the golden trace byte-identical for ``schedule_seed=None`` single-op runs.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.events import Event
from .monitor import SnapifyError

# -- states -----------------------------------------------------------------

REQUESTED = "REQUESTED"
PAUSING = "PAUSING"
DRAINED = "DRAINED"
CAPTURING = "CAPTURING"
#: Incremental captures split CAPTURING into two sub-states: the dirty-page
#: harvest (CAPTURING_DELTA) and the partner replication of the resulting
#: delta image through the in-memory tier (REPLICATING).
CAPTURING_DELTA = "CAPTURING_DELTA"
REPLICATING = "REPLICATING"
TRANSFERRING = "TRANSFERRING"
RETRYING = "RETRYING"
DONE = "DONE"
FAILED = "FAILED"

STATES = (REQUESTED, PAUSING, DRAINED, CAPTURING, CAPTURING_DELTA,
          REPLICATING, TRANSFERRING, RETRYING, DONE, FAILED)
TERMINAL = (DONE, FAILED)

#: Legal *working* transitions; DONE and FAILED are reachable from any
#: non-terminal state (via complete()/fail()), never left. TRANSFERRING and
#: RETRYING form the one permitted cycle: a transfer attempt that hits a
#: transient fault backs off in RETRYING, then re-enters TRANSFERRING for
#: the next attempt (possibly on a degraded channel — see
#: :class:`repro.snapify_io.resilience.TransferManager`).
_NEXT = {
    REQUESTED: (PAUSING, TRANSFERRING),
    PAUSING: (DRAINED,),
    DRAINED: (CAPTURING, CAPTURING_DELTA),
    CAPTURING: (TRANSFERRING,),
    # Incremental path: delta harvest, then partner replication, then the
    # (cheap) finish. A delta capture with no live partner candidate skips
    # straight to TRANSFERRING.
    CAPTURING_DELTA: (REPLICATING, TRANSFERRING),
    REPLICATING: (TRANSFERRING,),
    TRANSFERRING: (RETRYING,),
    RETRYING: (TRANSFERRING,),
    DONE: (),
    FAILED: (),
}


@dataclass(frozen=True)
class OperationResult:
    """The typed outcome of one operation (replaces ad-hoc timing dicts)."""

    op_id: int
    kind: str
    pid: int
    snapshot_path: Optional[str]
    ok: bool
    state: str  # DONE | FAILED
    error: Optional[str]
    failed_phase: Optional[str]
    started: float
    finished: float
    #: Simulated seconds spent in each non-terminal state, keyed by state.
    phases: Dict[str, float]
    #: Legacy instrumentation dicts, snapshotted from the handle at the end.
    timings: Dict[str, float]
    sizes: Dict[str, int]
    #: Which transfer channel carried the snapshot ("snapifyio" | "nfs" |
    #: "scp"), when known — None for operations that moved no snapshot.
    channel: Optional[str] = None
    #: Transfer attempts across all channels (1 = clean first try).
    attempts: int = 1
    #: Card the operation targeted, in fleet key form ("n0.mic1") — the
    #: same key :class:`repro.snapify.fleet.CardRef` uses, so per-card
    #: grouping never silently drops samples. None when no card is known.
    card: Optional[str] = None
    #: Incremental captures report BOTH sizes: ``delta_bytes`` is what was
    #: actually shipped (dirty pages + metadata), ``logical_bytes`` the full
    #: image the delta logically represents. Full captures leave delta_bytes
    #: None and phase/throughput math keyed on image size must use
    #: ``shipped_bytes`` — never assume the full image moved.
    delta_bytes: Optional[int] = None
    logical_bytes: Optional[int] = None
    incremental: bool = False
    #: Storage tier the snapshot landed in ("memtier" when the in-memory
    #: partner tier holds it; None for classic channel transfers).
    tier: Optional[str] = None

    @property
    def shipped_bytes(self) -> Optional[int]:
        """Bytes that actually crossed a channel/tier for this snapshot."""
        if self.delta_bytes is not None:
            return self.delta_bytes
        return self.sizes.get("offload_snapshot")

    @property
    def elapsed(self) -> float:
        return self.finished - self.started


class SnapifyOperation:
    """One in-flight Snapify action, addressable by its correlation id."""

    __slots__ = ("op_id", "kind", "manager", "snap", "pid", "card", "span_id",
                 "state", "error", "failed_phase", "terminate", "history",
                 "done", "result", "channel", "attempts", "fleet_key",
                 "delta_bytes", "logical_bytes", "incremental", "tier",
                 "plugin_images")

    def __init__(self, manager: "OperationManager", op_id: int, kind: str,
                 snap: Any = None, span_id: int = 0):
        self.manager = manager
        self.op_id = op_id
        self.kind = kind
        self.snap = snap
        self.pid = self._pid_of(snap)
        self.card = self._card_of(snap)
        self.span_id = span_id
        self.state = REQUESTED
        self.error: Optional[str] = None
        self.failed_phase: Optional[str] = None
        #: capture-only: the offload process terminates once captured, so no
        #: resume will close this operation — snapify_wait does.
        self.terminate = False
        self.history: List[Tuple[str, float]] = [(REQUESTED, manager.sim.now)]
        self.done = Event(manager.sim, name=f"op{op_id}:{kind}.done")
        self.result: Optional[OperationResult] = None
        #: Transfer provenance, set by the agent/TransferManager.
        self.channel: Optional[str] = None
        self.attempts: int = 1
        #: Fleet attribution: the FleetManager ticket key that issued this
        #: operation (None for directly-driven operations).
        self.fleet_key: Optional[str] = None
        #: Incremental-capture provenance (set by the completion waiter).
        self.delta_bytes: Optional[int] = None
        self.logical_bytes: Optional[int] = None
        self.incremental: bool = False
        self.tier: Optional[str] = None
        #: Number of non-builtin checkpoint-plugin images the captured
        #: context carried (0 for legacy captures).
        self.plugin_images: int = 0

    @staticmethod
    def _pid_of(snap: Any) -> int:
        coiproc = getattr(snap, "coiproc", None)
        if coiproc is None or coiproc.offload_proc is None:
            return -1
        return coiproc.offload_proc.pid

    @staticmethod
    def _card_of(snap: Any) -> Optional[str]:
        """The fleet card key ("n0.mic1") of the targeted device, if any.

        Derived from the COI engine's Phi rather than passed in, so every
        path — direct API, use cases, fleet tickets — tags operations with
        the *same* key :class:`repro.snapify.fleet.CardRef` uses.
        """
        coiproc = getattr(snap, "coiproc", None)
        phi = getattr(getattr(coiproc, "engine", None), "phi", None)
        if phi is None:
            return None
        name = getattr(getattr(phi, "node", None), "name", "")
        digits = "".join(ch for ch in name if ch.isdigit())
        return f"n{digits or 0}.mic{getattr(phi, 'index', 0)}"

    # -- state inspection ---------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL

    def abandoned(self) -> bool:
        """The processes this operation was driving are gone: nobody is left
        to finish it, so a non-terminal state is expected, not a leak."""
        coiproc = getattr(self.snap, "coiproc", None) if self.snap is not None else None
        if coiproc is None:
            return False
        host = coiproc.host_proc
        if host is None or not host.alive:
            return True
        return coiproc.dead or not coiproc.offload_proc.alive

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (repro artifacts, RunResult, CLI tables)."""
        out = {
            "op": self.op_id,
            "kind": self.kind,
            "pid": self.pid,
            "card": self.card,
            "state": self.state,
            "error": self.error,
            "failed_phase": self.failed_phase,
            "started": self.history[0][1],
        }
        if self.fleet_key is not None:
            out["fleet_key"] = self.fleet_key
        if self.plugin_images:
            out["plugin_images"] = self.plugin_images
        return out

    # -- transitions --------------------------------------------------------
    def transition(self, state: str, **fields: Any) -> None:
        """Advance to a working state; raises on an illegal move."""
        if state not in _NEXT[self.state]:
            raise SnapifyError(
                f"illegal operation transition {self.state} -> {state}",
                op_id=self.op_id, phase=self.state,
            )
        self.state = state
        sim = self.manager.sim
        self.history.append((state, sim.now))
        sim.trace.emit("op.state", op=self.op_id, kind=self.kind,
                       state=state, pid=self.pid, card=self.card, **fields)

    def complete(self) -> OperationResult:
        """Close the operation successfully (idempotent once DONE)."""
        if self.state == DONE:
            return self.result
        if self.state == FAILED:
            raise SnapifyError("complete() on a failed operation",
                               op_id=self.op_id, phase=FAILED)
        return self._finalize(DONE)

    def fail(self, reason: str, *, phase: Optional[str] = None) -> OperationResult:
        """Close the operation as failed (idempotent once terminal: error
        paths legitimately report twice — waiter thread, then the waiter
        API call)."""
        if self.is_terminal:
            return self.result
        self.failed_phase = phase or self.state
        self.error = reason
        return self._finalize(FAILED)

    def fail_with(self, message: str, *, phase: Optional[str] = None) -> SnapifyError:
        """Mark the operation failed and build the exception to raise."""
        self.fail(message, phase=phase)
        return SnapifyError(message, op_id=self.op_id, phase=self.failed_phase)

    def _finalize(self, state: str) -> OperationResult:
        sim = self.manager.sim
        self.state = state
        self.history.append((state, sim.now))
        phases: Dict[str, float] = {}
        for (st, t0), (_, t1) in zip(self.history, self.history[1:]):
            phases[st.lower()] = phases.get(st.lower(), 0.0) + (t1 - t0)
        self.result = OperationResult(
            op_id=self.op_id,
            kind=self.kind,
            pid=self.pid,
            snapshot_path=getattr(self.snap, "snapshot_path", None),
            ok=state == DONE,
            state=state,
            error=self.error,
            failed_phase=self.failed_phase,
            started=self.history[0][1],
            finished=sim.now,
            phases=phases,
            timings=dict(getattr(self.snap, "timings", None) or {}),
            sizes=dict(getattr(self.snap, "sizes", None) or {}),
            channel=self.channel,
            attempts=self.attempts,
            card=self.card,
            delta_bytes=self.delta_bytes,
            logical_bytes=self.logical_bytes,
            incremental=self.incremental,
            tier=self.tier,
        )
        sim.trace.emit("op.end", op=self.op_id, kind=self.kind, state=state,
                       pid=self.pid, card=self.card, error=self.error)
        # Telemetry hooks: one getattr each when disabled, nothing more.
        telem = getattr(sim, "snapify_telemetry", None)
        if telem is not None:
            telem.observe_operation(self)
        if state == FAILED:
            flight = getattr(sim, "snapify_flight_recorder", None)
            if flight is not None:
                flight.note_failure(self)
        self.manager.last_result = self.result
        if not self.done.triggered:
            self.done.succeed(self.result)
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SnapifyOperation {self.op_id} {self.kind} {self.state}>"


class _EndpointDemux:
    """Per-endpoint reply routing state (see :meth:`OperationManager.recv_reply`)."""

    __slots__ = ("pending", "waiters", "receiver", "dead")

    def __init__(self):
        #: op_id -> replies already received on its behalf.
        self.pending: Dict[int, Deque[Dict[str, Any]]] = {}
        #: op_id -> event the parked owner is waiting on.
        self.waiters: Dict[int, Event] = {}
        #: op_id currently holding the endpoint's recv (None = free).
        self.receiver: Optional[int] = None
        #: the exception that killed the endpoint, surfaced to every caller.
        self.dead: Optional[BaseException] = None


class OperationManager:
    """Issues, tracks, and demultiplexes operations for one simulator."""

    _ATTR = "snapify_operations"

    def __init__(self, sim: Any):
        self.sim = sim
        self._ids = itertools.count(1)
        #: every operation ever issued, by id (results included).
        self.operations: Dict[int, SnapifyOperation] = {}
        self.last_result: Optional[OperationResult] = None
        self._demux: Dict[int, _EndpointDemux] = {}

    @classmethod
    def of(cls, sim: Any) -> "OperationManager":
        mgr = getattr(sim, cls._ATTR, None)
        if mgr is None:
            mgr = cls(sim)
            setattr(sim, cls._ATTR, mgr)
        return mgr

    @classmethod
    def peek(cls, sim: Any) -> Optional["OperationManager"]:
        """The simulator's manager if one exists — oracles must not create one."""
        return getattr(sim, cls._ATTR, None)

    # -- issuing ------------------------------------------------------------
    def begin(self, kind: str, snap: Any = None, *,
              span: Any = None) -> SnapifyOperation:
        """Open an operation for ``snap``. If the handle already carries a
        live operation (a use case opened it before delegating to the API,
        or an MPI coordinator pre-issued it), that one is adopted instead of
        being orphaned."""
        existing = getattr(snap, "op", None) if snap is not None else None
        if existing is not None and not existing.is_terminal:
            if span is not None and not existing.span_id:
                existing.span_id = getattr(span, "span_id", span) or 0
            return existing
        span_id = getattr(span, "span_id", span) or 0
        op = SnapifyOperation(self, next(self._ids), kind, snap=snap,
                              span_id=int(span_id))
        self.operations[op.op_id] = op
        if snap is not None:
            snap.op = op
        self.sim.trace.emit("op.begin", op=op.op_id, kind=kind, pid=op.pid,
                            card=op.card, span=op.span_id)
        return op

    def adopt(self, snap: Any, kind: str = "api") -> SnapifyOperation:
        """The operation an API call should account to: the handle's live
        one, else a fresh auto-issued one (raw five-call API users)."""
        op = getattr(snap, "op", None)
        if op is not None and not op.is_terminal:
            if op.pid < 0:
                op.pid = SnapifyOperation._pid_of(snap)
            if op.card is None:
                op.card = SnapifyOperation._card_of(snap)
            return op
        return self.begin(kind, snap)

    # -- bookkeeping ---------------------------------------------------------
    def non_terminal(self) -> List[SnapifyOperation]:
        return [op for op in self.operations.values() if not op.is_terminal]

    def describe_pending(self) -> List[Dict[str, Any]]:
        return [op.describe() for op in self.non_terminal()]

    # -- waiting -------------------------------------------------------------
    def wait(self, op: SnapifyOperation, *, raise_on_error: bool = True):
        """Sub-generator: block until ``op`` is terminal; returns its result."""
        if not op.done.triggered:
            yield op.done
        if raise_on_error and op.state == FAILED:
            raise SnapifyError(
                f"operation {op.kind} failed in {op.failed_phase}: {op.error}",
                op_id=op.op_id, phase=op.failed_phase,
            )
        return op.result

    def wait_all(self, ops: Sequence[SnapifyOperation], *,
                 raise_on_error: bool = True):
        """Sub-generator: block until every operation is terminal. Returns
        the results in input order; with ``raise_on_error`` a single
        :class:`SnapifyError` names every failed operation."""
        pending = [op.done for op in ops if not op.done.triggered]
        if pending:
            yield self.sim.all_of(pending)
        failed = [op for op in ops if op.state == FAILED]
        if raise_on_error and failed:
            first = failed[0]
            detail = "; ".join(
                f"op {op.op_id} ({op.kind}) failed in {op.failed_phase}: {op.error}"
                for op in failed
            )
            raise SnapifyError(f"{len(failed)} operation(s) failed: {detail}",
                               op_id=first.op_id, phase=first.failed_phase)
        return [op.result for op in ops]

    def wait_map(self, ops: "Mapping[str, SnapifyOperation]", *,
                 raise_on_error: bool = False):
        """Sub-generator: block until every keyed operation is terminal.

        Fleet-style waiting: returns ``{key: OperationResult}`` so callers
        driving many applications at once (one key per app/card) get their
        outcomes back addressable, failures included.  With
        ``raise_on_error`` the aggregate error names keys, not op ids.
        """
        items = list(ops.items())
        pending = [op.done for _, op in items if not op.done.triggered]
        if pending:
            yield self.sim.all_of(pending)
        failed = [(key, op) for key, op in items if op.state == FAILED]
        if raise_on_error and failed:
            detail = "; ".join(
                f"{key} ({op.kind}) failed in {op.failed_phase}: {op.error}"
                for key, op in failed
            )
            raise SnapifyError(
                f"{len(failed)} keyed operation(s) failed: {detail}",
                op_id=failed[0][1].op_id, phase=failed[0][1].failed_phase,
            )
        return {key: op.result for key, op in items}

    # -- endpoint demultiplexing ----------------------------------------------
    def recv_reply(self, op: SnapifyOperation, ep: Any):
        """Sub-generator: the next daemon reply addressed to ``op`` on ``ep``.

        The first operation to ask becomes the endpoint's *receiver* and
        does the actual ``recv``; replies carrying another operation's id
        are queued for their owner and the owner's park event triggered.
        Replies with no id (id 0) are legacy/unkeyed and go to whoever
        received them — exactly the old single-operation behavior. An
        endpoint death is latched and re-raised to every caller, preserving
        the documented "lost the COI daemon" error surface.
        """
        d = self._demux.get(ep.eid)
        if d is None:
            d = self._demux[ep.eid] = _EndpointDemux()
        me = op.op_id
        while True:
            queue = d.pending.get(me)
            if queue:
                return queue.popleft()
            if d.dead is not None:
                raise d.dead
            if d.receiver is None:
                d.receiver = me
                try:
                    msg = yield ep.recv()
                except BaseException as exc:
                    d.dead = exc
                    raise
                finally:
                    # Runs before the routing below: parked waiters resume
                    # only after this thread yields again, by which point
                    # any reply owed to them has been queued.
                    d.receiver = None
                    self._wake_waiters(d)
                target = msg.get("op_id", 0) if isinstance(msg, dict) else 0
                if target in (0, me):
                    return msg
                d.pending.setdefault(target, deque()).append(msg)
            else:
                ev = d.waiters.get(me)
                if ev is None or ev.triggered:
                    ev = Event(self.sim, name=f"op{me}:{op.kind}.reply")
                    d.waiters[me] = ev
                yield ev

    @staticmethod
    def _wake_waiters(d: _EndpointDemux) -> None:
        if not d.waiters:
            return
        waiters, d.waiters = d.waiters, {}
        for ev in waiters.values():
            if not ev.triggered:
                ev.succeed(None)


# ---------------------------------------------------------------------------
# Composed sequences
# ---------------------------------------------------------------------------


def capture_sequence(snap: Any, *, terminate: bool = False,
                     resume: Optional[bool] = None, between: Any = None):
    """Sub-generator: one full operation — pause, capture, (``between``),
    wait, and (unless terminated) resume. The canonical five-call order
    every §5 use case shares; ``between`` is an optional sub-generator run
    while the offload capture is in flight (the checkpoint use case
    snapshots the host process there)."""
    from .api import snapify_capture, snapify_pause, snapify_resume, snapify_wait

    yield from snapify_pause(snap)
    yield from snapify_capture(snap, terminate=terminate)
    if between is not None:
        yield from between
    yield from snapify_wait(snap)
    if resume is None:
        resume = not terminate
    if resume:
        yield from snapify_resume(snap)
    return snap.op.result if snap.op is not None else None


def snapshot_application(snaps: Sequence[Any], *, terminate: bool = False,
                         resume: Optional[bool] = None, kind: str = "app-snapshot",
                         raise_on_error: bool = True):
    """Sub-generator: snapshot *all* offload processes of an application
    concurrently (§4: pause/capture/resume applies to every offload process
    of the application in parallel; §5's MPI use case rides this).

    ``snaps`` holds one prepared ``snapify_t`` per offload process — they
    may live on different cards and even belong to different host
    processes. Each is driven through the full cycle on its own host-side
    thread; the call returns when every operation is terminal. Returns the
    :class:`OperationResult` list in input order.
    """
    if not snaps:
        return []
    sim = snaps[0].coiproc.sim
    mgr = OperationManager.of(sim)
    ops = [mgr.begin(kind, snap) for snap in snaps]

    def _worker(snap, op):
        try:
            yield from capture_sequence(snap, terminate=terminate, resume=resume)
        except SnapifyError:
            pass  # the operation is marked FAILED; wait_all reports it
        except Exception as exc:  # infrastructure death (card/endpoint gone)
            if not op.is_terminal:
                op.fail(f"{type(exc).__name__}: {exc}")
            raise

    for snap, op in zip(snaps, ops):
        snap.coiproc.host_proc.spawn_thread(
            _worker(snap, op), name=f"snapify-op{op.op_id}", daemon=True
        )
    result = yield from mgr.wait_all(ops, raise_on_error=raise_on_error)
    return result
