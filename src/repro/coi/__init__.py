"""COI: the Coprocessor Offload Infrastructure of MPSS (simulated).

Layers: :class:`COIEngine` (host entry point per card), :class:`COIDaemon`
(one per card), :class:`COIProcess` (host-side process handle) and
:class:`CardRuntime` (offload-process-side runtime), with buffers backed by
card local-store files and a run-function pipeline.
"""

from .buffer import COIBuffer, localstore_dir, localstore_path
from .daemon import COIDaemon, DaemonEntry
from .engine import COIEngine
from .pipeline import CardContext, OffloadBinary, OffloadFunction, PipelineError
from .process import CardRuntime, COIProcess, card_main_factory
from .services import ClientChannel, COIError, ServerLoop
from . import messages

__all__ = [
    "COIBuffer",
    "COIDaemon",
    "COIEngine",
    "COIError",
    "COIProcess",
    "CardContext",
    "CardRuntime",
    "ClientChannel",
    "DaemonEntry",
    "OffloadBinary",
    "OffloadFunction",
    "PipelineError",
    "ServerLoop",
    "card_main_factory",
    "localstore_dir",
    "localstore_path",
    "messages",
]
