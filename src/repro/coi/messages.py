"""Message type tags used on COI's SCIF channels and the daemon pipe."""

# Daemon control plane (host <-> coi_daemon).
LAUNCH = "coi.launch"
LAUNCH_OK = "coi.launch.ok"
SHUTDOWN_PROC = "coi.shutdown_proc"

# Generic client-server channels (case 3 of the drain protocol).
REQUEST = "coi.request"
REPLY = "coi.reply"
#: The special marker snapify_pause() injects: "no more commands will follow
#: until snapify_resume() is called."
SHUTDOWN = "snapify.shutdown"
SHUTDOWN_ACK = "snapify.shutdown.ack"
RESUME = "snapify.resume"

# Pipeline channel (case 4).
RUN_FUNCTION = "coi.pipeline.run"
FUNCTION_RESULT = "coi.pipeline.result"

# Buffer management RPCs over the cmd channel.
BUFFER_CREATE = "coi.buffer.create"
BUFFER_DESTROY = "coi.buffer.destroy"
BUFFER_REREGISTER = "coi.buffer.reregister"

# Event channel notifications (offload -> host).
EVENT_FUNCTION_DONE = "coi.event.function_done"

# Log channel records (offload -> host).
LOG_RECORD = "coi.log.record"

#: Channel names in creation order; host connects one SCIF connection per
#: name when attaching to a (new or restored) offload process.
CHANNELS = ("control", "cmd", "event", "log", "pipeline", "dma")
