"""Generic COI client-server channel machinery (drain case 3).

COI internally runs several client/server thread pairs — commands
(host -> offload), events and logs (offload -> host). Each server thread
handles its channel *sequentially*; each client site is guarded by a mutex.
Snapify's pause exploits exactly this structure: grab the client mutex (so
no new request can start), then push a SHUTDOWN marker through the channel
and wait for the ack — once the ack is back, every earlier message has been
fully processed and the channel is provably empty.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from ..scif.endpoint import ConnectionReset, ScifEndpoint
from ..sim.errors import Interrupted, SimError
from ..sim.events import Event
from ..sim.sync import Mutex
from . import messages as m

if TYPE_CHECKING:  # pragma: no cover
    from ..osim.process import SimProcess
    from ..sim.kernel import Simulator


class COIError(SimError):
    """COI-level failure."""


class ClientChannel:
    """Client side of a COI service channel.

    All traffic goes through :meth:`rpc` (request/reply) or :meth:`notify`
    (one-way), both serialized by ``mutex``. ``snapify_shutdown`` implements
    the pause-side quiesce; ``snapify_release`` undoes it at resume.
    """

    def __init__(self, sim: "Simulator", ep: ScifEndpoint, name: str):
        self.sim = sim
        self.ep = ep
        self.name = name
        self.mutex = Mutex(sim, name=f"coi.client:{name}")
        self.shut_down = False

    def rebind(self, ep: ScifEndpoint) -> None:
        """Point the client at a reconnected endpoint (after restore)."""
        self.ep = ep

    def rpc(self, msg: Any, nbytes: int = 64):
        """Sub-generator: send a request and wait for its reply."""
        yield self.mutex.acquire(owner="rpc")
        try:
            if self.shut_down:
                raise COIError(f"{self.name}: channel is quiesced by snapify")
            yield from self.ep.send(msg, nbytes)
            reply = yield self.ep.recv()
            return reply
        finally:
            self.mutex.release()

    def notify(self, msg: Any, nbytes: int = 64):
        """Sub-generator: one-way message (events, logs)."""
        yield self.mutex.acquire(owner="notify")
        try:
            if self.shut_down:
                raise COIError(f"{self.name}: channel is quiesced by snapify")
            yield from self.ep.send(msg, nbytes)
        finally:
            self.mutex.release()

    # -- snapify hooks ------------------------------------------------------
    def snapify_shutdown(self):
        """Sub-generator: acquire the client lock (kept!), send SHUTDOWN and
        wait for the ack. On return the channel is empty in both directions
        and no thread can inject new traffic until :meth:`snapify_release`."""
        yield self.mutex.acquire(owner="snapify")
        self.shut_down = True
        yield from self.ep.send({"type": m.SHUTDOWN, "channel": self.name})
        ack = yield self.ep.recv()
        if not (isinstance(ack, dict) and ack.get("type") == m.SHUTDOWN_ACK):
            raise COIError(f"{self.name}: bad shutdown ack {ack!r}")

    def snapify_release(self) -> None:
        """Release the lock taken by :meth:`snapify_shutdown` (resume path)."""
        if not self.shut_down:
            raise COIError(f"{self.name}: release without shutdown")
        self.shut_down = False
        self.mutex.release()


class ServerLoop:
    """Sequential server thread over one COI channel.

    ``handler(msg)`` is a sub-generator returning an optional reply. The
    loop acknowledges SHUTDOWN markers, survives connection resets while the
    owning COIProcess is suspended (waiting to be rebound to a restored
    peer), and dies quietly when its process is terminated.
    """

    def __init__(
        self,
        proc: "SimProcess",
        ep: ScifEndpoint,
        handler: Callable[[Any], Any],
        name: str,
    ):
        self.proc = proc
        self.sim = proc.sim
        self.ep = ep
        self.handler = handler
        self.name = name
        self.shutdowns_seen = 0
        self.messages_handled = 0
        #: True while a request handler is executing. The card-side quiesce
        #: waits this out: a snapshot taken mid-BUFFER_CREATE would save a
        #: local store that disagrees with the captured context.
        self.busy = False
        self._rebound: Optional[Event] = None
        self.thread = proc.spawn_thread(self._loop(), name=f"srv:{name}", daemon=True)

    def rebind(self, ep: ScifEndpoint) -> None:
        """Attach a new endpoint after the peer was restored."""
        self.ep = ep
        if self._rebound is not None and not self._rebound.triggered:
            self._rebound.succeed(ep)

    def _loop(self):
        while True:
            try:
                msg = yield self.ep.recv()
            except (ConnectionReset, Interrupted):
                # Peer vanished: wait until someone rebinds us (restore), or
                # die with the process (thread gets killed at terminate).
                self._rebound = Event(self.sim, name=f"rebind:{self.name}")
                yield self._rebound
                self._rebound = None
                continue
            if isinstance(msg, dict) and msg.get("type") == m.SHUTDOWN:
                self.shutdowns_seen += 1
                yield from self.ep.send({"type": m.SHUTDOWN_ACK, "channel": self.name})
                continue
            self.messages_handled += 1
            self.busy = True
            try:
                reply = yield from self.handler(msg)
            finally:
                self.busy = False
            if reply is not None:
                yield from self.ep.send(reply)
