"""Offload functions and binaries.

The Xeon Phi compiler turns each offload region into a function stored in a
dynamically loadable card binary. We model a binary as a named set of
:class:`OffloadFunction` objects: each has a *duration* (simulated compute
time on the card) and an optional *effect* — a callable that mutates card
state (buffer payloads, the process store) exactly once, at completion.

The effect-at-completion rule is what makes snapshots consistent: a snapshot
taken mid-execution captures the pre-effect state plus the in-flight
bookkeeping, so the restored process re-executes the remaining time and
applies the effect exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Union

from ..sim.errors import SimError

if TYPE_CHECKING:  # pragma: no cover
    from .process import CardRuntime


class PipelineError(SimError):
    """Run-function failures (unknown function, bad binary...)."""


class CardContext:
    """What an offload function sees while executing on the card."""

    def __init__(self, runtime: "CardRuntime"):
        self._rt = runtime
        self.store = runtime.proc.store

    def buffer_payload(self, buf_id: int) -> Any:
        return self._rt.buffer_file(buf_id).payload

    def set_buffer_payload(self, buf_id: int, payload: Any) -> None:
        self._rt.buffer_file(buf_id).payload = payload

    def map_region(self, name: str, size: int, kind: str = "heap") -> None:
        """Allocate offload-private memory (e.g. an application heap)."""
        self._rt.proc.map_region(name, size, kind=kind)

    def has_region(self, name: str) -> bool:
        return name in self._rt.proc.regions


@dataclass(frozen=True)
class OffloadFunction:
    """One offload region compiled into the card binary."""

    name: str
    #: Simulated execution time: constant seconds or fn(args) -> seconds.
    duration: Union[float, Callable[[Any], float]] = 0.0
    #: Applied once at completion; returns the function's result value.
    effect: Optional[Callable[[CardContext, Any], Any]] = None

    def duration_for(self, args: Any) -> float:
        d = self.duration(args) if callable(self.duration) else self.duration
        if d < 0:
            raise PipelineError(f"{self.name}: negative duration")
        return float(d)

    def apply(self, ctx: CardContext, args: Any) -> Any:
        if self.effect is None:
            return None
        return self.effect(ctx, args)


@dataclass(frozen=True)
class OffloadBinary:
    """The card-side shared library generated for an offload application."""

    name: str
    image_size: int
    functions: Dict[str, OffloadFunction] = field(default_factory=dict)

    def function(self, name: str) -> OffloadFunction:
        fn = self.functions.get(name)
        if fn is None:
            raise PipelineError(f"binary {self.name!r} has no offload function {name!r}")
        return fn
