"""COIEngine: the host-side entry point for one coprocessor."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..hw.node import PhiDevice, ServerNode
from ..hw.pcie import HOST_TO_DEVICE
from ..osim.process import OSInstance, SimProcess
from ..scif.endpoint import ScifEndpoint, ScifNetwork
from ..scif.ports import COI_DAEMON_PORT
from . import messages as m
from .pipeline import OffloadBinary
from .process import COIProcess
from .services import COIError

if TYPE_CHECKING:  # pragma: no cover
    pass


class COIEngine:
    """Host-side view of one Xeon Phi device."""

    def __init__(self, node: ServerNode, phi_index: int):
        self.node = node
        self.sim = node.sim
        self.phi: PhiDevice = node.phis[phi_index]
        if node.os is None or self.phi.os is None:
            raise COIError("boot the host and card OSes before creating engines")
        self.host_os: OSInstance = node.os
        self.phi_os: OSInstance = self.phi.os
        self.net = ScifNetwork.of(node)

    @property
    def device_id(self) -> int:
        """The engine's device number (0-based card index), as used by
        ``snapify_restore(snapshot, device)``."""
        return self.phi.index

    def connect_daemon(self, host_proc: SimProcess):
        """Sub-generator: open the host process's control connection to the
        card's COI daemon; returns the endpoint."""
        ep = yield from self.net.connect(
            self.host_os, self.phi.scif_node_id, COI_DAEMON_PORT, proc=host_proc
        )
        return ep

    def connect_channels(self, host_proc: SimProcess, port: int) -> "ChannelConnector":
        return ChannelConnector(self, host_proc, port)

    def process_create(self, host_proc: SimProcess, binary: OffloadBinary,
                       snapify_enabled: bool = True):
        """Sub-generator: launch ``binary`` as an offload process.

        Mirrors §2: the host asks the daemon to spawn the process, ships the
        card binary over PCIe, then connects the COI channels. Returns a
        :class:`COIProcess` handle. ``snapify_enabled=False`` launches with
        the stock (unsnapshotable) runtime — the Fig. 9 baseline.
        """
        daemon_ep = yield from self.connect_daemon(host_proc)
        # Copy the Xeon Phi binary (dynamically loadable library) to the card.
        yield from self.phi.link.rdma(HOST_TO_DEVICE, binary.image_size)
        yield from daemon_ep.send({
            "type": m.LAUNCH, "name": host_proc.name, "binary": binary,
            "host_proc": host_proc, "snapify_enabled": snapify_enabled,
        })
        reply = yield daemon_ep.recv()
        if not (isinstance(reply, dict) and reply.get("type") == m.LAUNCH_OK):
            raise COIError(f"launch failed: {reply!r}")
        eps = yield from self.connect_channels(host_proc, reply["port"]).connect_all()
        return COIProcess(
            host_proc=host_proc,
            engine=self,
            binary=binary,
            offload_proc=reply["offload_proc"],
            daemon_ep=daemon_ep,
            eps=eps,
            snapify_enabled=snapify_enabled,
        )


class ChannelConnector:
    """Connects the six COI channels to a (new or restored) offload process."""

    def __init__(self, engine: COIEngine, host_proc: SimProcess, port: int):
        self.engine = engine
        self.host_proc = host_proc
        self.port = port

    def connect_all(self):
        """Sub-generator: returns dict of channel-name -> host endpoint."""
        eng = self.engine
        eps: Dict[str, ScifEndpoint] = {}
        for name in m.CHANNELS:
            ep = yield from eng.net.connect(
                eng.host_os, eng.phi.scif_node_id, self.port, proc=self.host_proc
            )
            yield from ep.send(name)
            eps[name] = ep
        return eps
