"""The COI daemon (one per coprocessor).

The daemon launches offload processes on request from host applications,
monitors both ends (terminating orphaned offload processes and cleaning up
their local-store files), and — in the Snapify-extended stack — coordinates
the pause/capture/resume/restore protocol, dispatching snapify service
requests to handlers registered in :attr:`COIDaemon.extensions`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from ..hw.node import PhiDevice
from ..osim.process import OSInstance, SimProcess
from ..scif.endpoint import ConnectionReset, ScifEndpoint, ScifNetwork
from ..scif.ports import COI_DAEMON_PORT
from ..sim.errors import Interrupted
from . import messages as m
from .buffer import localstore_dir
from .process import card_main_factory
from .services import COIError

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import OffloadBinary


@dataclass
class DaemonEntry:
    """Daemon-side bookkeeping for one offload process."""

    host_proc: SimProcess
    offload_proc: SimProcess
    port: int
    binary: "OffloadBinary"
    expected_exit: bool = False
    state: str = "running"  # running | terminated | crashed
    #: Daemon-side endpoint of the snapify control pipe (opened at pause).
    pipe: Optional[Any] = None


class COIDaemon:
    """One ``coi_daemon`` process on one Phi."""

    #: name -> handler(daemon, ep, msg) sub-generator; Snapify installs here.
    extensions: Dict[str, Callable] = {}

    def __init__(self, phi: PhiDevice):
        if phi.os is None:
            raise COIError(f"{phi!r}: boot the card OS before starting the daemon")
        self.phi = phi
        self.phi_os: OSInstance = phi.os
        self.sim = phi.sim
        self.entries: Dict[int, DaemonEntry] = {}
        self._ports = itertools.count(2000 + 10_000 * phi.scif_node_id)
        self.proc: Optional[SimProcess] = None
        #: Extension attachment point (Snapify's monitor-thread state).
        self.runtime: Dict[str, Any] = {}

    # -- boot -------------------------------------------------------------------
    @staticmethod
    def boot(phi: PhiDevice):
        """Sub-generator: start the daemon process on the card; returns it."""
        daemon = COIDaemon(phi)
        proc = yield from phi.os.spawn_process(
            f"coi_daemon.mic{phi.index}", image_size=8 * 1024 * 1024,
            main_factory=daemon._main_factory(), start=True,
        )
        daemon.proc = proc
        proc.main_thread.daemon = True  # service loop: never exits
        phi.coi_daemon = daemon  # type: ignore[attr-defined]
        return daemon

    @staticmethod
    def of(phi: PhiDevice) -> "COIDaemon":
        daemon = getattr(phi, "coi_daemon", None)
        if daemon is None:
            raise COIError(f"{phi!r}: COI daemon not booted")
        return daemon

    def _main_factory(self):
        def main(proc: SimProcess):
            net = ScifNetwork.of(self.phi.node)
            listener = net.listen(self.phi_os, COI_DAEMON_PORT)
            proc.runtime["listener"] = listener
            proc.open_fds.append(listener)  # released if the daemon dies
            while True:
                ep = yield listener.accept()
                # Owning the endpoint means a card failure (killing this
                # daemon) resets the host's connection instead of hanging it.
                proc.open_fds.append(ep)
                proc.spawn_thread(self._conn_handler(ep), name="daemon-conn", daemon=True)

        return main

    # -- per-connection service loop ------------------------------------------------
    def _conn_handler(self, ep: ScifEndpoint):
        while True:
            try:
                msg = yield ep.recv()
            except (ConnectionReset, Interrupted):
                return  # host process went away; its exit watcher cleans up
            if not isinstance(msg, dict):
                raise COIError(f"daemon: bad message {msg!r}")
            mtype = msg.get("type")
            if mtype == m.LAUNCH:
                yield from self._handle_launch(ep, msg)
            elif mtype == m.SHUTDOWN_PROC:
                yield from self._handle_shutdown(ep, msg)
            elif mtype in self.extensions:
                yield from self.extensions[mtype](self, ep, msg)
            else:
                raise COIError(f"daemon: unknown request {mtype!r}")

    def _handle_launch(self, ep: ScifEndpoint, msg: Dict[str, Any]):
        binary: "OffloadBinary" = msg["binary"]
        host_proc: SimProcess = msg["host_proc"]
        port = next(self._ports)
        offload = yield from self.phi_os.spawn_process(
            f"{msg['name']}.offload", image_size=0,
            main_factory=card_main_factory(binary), start=False,
        )
        offload.store["_listen_port"] = port
        offload.store["_snapify_enabled"] = msg.get("snapify_enabled", True)
        listening = self.sim.event(f"listening:{offload.name}")
        offload.runtime["listening"] = listening
        entry = DaemonEntry(host_proc=host_proc, offload_proc=offload,
                            port=port, binary=binary)
        self.entries[offload.pid] = entry
        self._watch(entry)
        offload.start()
        yield listening  # card runtime is accepting connections
        yield from ep.send({"type": m.LAUNCH_OK, "pid": offload.pid, "port": port,
                            "offload_proc": offload})

    def _handle_shutdown(self, ep: ScifEndpoint, msg: Dict[str, Any]):
        entry = self.entries.get(msg["pid"])
        if entry is None:
            yield from ep.send({"type": m.REPLY, "ok": False})
            return
        self.terminate_offload(entry, expected=True)
        yield from ep.send({"type": m.REPLY, "ok": True})

    # -- monitoring --------------------------------------------------------------------
    def _watch(self, entry: DaemonEntry) -> None:
        def on_host_exit(proc: SimProcess) -> None:
            if proc is entry.host_proc and entry.offload_proc.alive:
                # Orphaned offload process: terminate and clean up (§2).
                self.terminate_offload(entry, expected=True)

        def on_offload_exit(proc: SimProcess) -> None:
            if proc is not entry.offload_proc:
                return
            if entry.state == "running":
                # Without Snapify's bookkeeping the daemon "will assume that
                # the offload process has crashed" (§3).
                entry.state = "terminated" if entry.expected_exit else "crashed"
            self._cleanup_localstore(entry)

        entry.host_proc.os.exit_watchers.append(on_host_exit)
        self.phi_os.exit_watchers.append(on_offload_exit)

    def terminate_offload(self, entry: DaemonEntry, expected: bool) -> None:
        entry.expected_exit = expected
        if entry.offload_proc.alive:
            entry.state = "terminated" if expected else "crashed"
            entry.offload_proc.terminate()

    def _cleanup_localstore(self, entry: DaemonEntry) -> None:
        prefix = localstore_dir(entry.offload_proc.pid)
        for path in self.phi_os.fs.listdir(prefix):
            self.phi_os.fs.unlink(path)

    def entry_for(self, offload_proc: SimProcess) -> DaemonEntry:
        entry = self.entries.get(offload_proc.pid)
        if entry is None:
            raise COIError(f"daemon has no entry for pid {offload_proc.pid}")
        return entry
