"""COI buffers and the local store.

A COI buffer's card-side backing is one *file* on the Phi's RAM file system
("local store"), memory-mapped into the offload process. Two consequences
the paper leans on, both preserved here:

* local-store bytes are card *file-system* pages, not anonymous process
  memory — so a BLCR snapshot of the offload process does **not** contain
  them, and ``snapify_pause`` must save the local store separately;
* the files persist until the offload process terminates, so the card
  memory they pin is held for the process lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class COIBuffer:
    """Host-side buffer handle.

    ``rdma_offset`` is the offset returned when the buffer's card pages were
    *first* registered; after a restore the card re-registers and the handle
    keeps its original offset — translation happens through the COIProcess's
    (old, new) address table, exactly as in §4.3 of the paper.
    """

    buf_id: int
    size: int
    rdma_offset: int
    localstore_path: str


def localstore_dir(pid: int) -> str:
    """Where an offload process keeps its COI buffer files on the card."""
    return f"/tmp/coi_procs/{pid}"


def localstore_path(pid: int, buf_id: int) -> str:
    return f"{localstore_dir(pid)}/buf_{buf_id}"
