"""The two halves of an offload process.

* :class:`CardRuntime` — runs *inside* the offload process on the Phi: it
  accepts the six SCIF channels from the host, runs the cmd/control server
  threads and the pipeline server, owns the COI buffers (local store files),
  and carries the quiesce hooks Snapify's pause/resume protocol drives.

* :class:`COIProcess` — the host-side handle (``COIProcess*`` in the paper's
  API): run-function, buffer create/read/write, destroy; plus the drain
  locks of cases 1, 2 and 4 and the (old, new) RDMA address table used
  after restores.

Both halves keep their durable state in the owning SimProcess's ``store``
(sequence numbers, issued buffers, in-flight function bookkeeping), which is
exactly the state a BLCR snapshot carries across restarts.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..obs.registry import MetricsRegistry
from ..osim.process import OSInstance, SimProcess
from ..scif.endpoint import ConnectionReset, ScifEndpoint, ScifNetwork
from ..scif.rdma import scif_vreadfrom, scif_vwriteto
from ..scif.registry import scif_register
from ..sim.errors import Interrupted
from ..sim.events import Event
from ..sim.sync import Mutex
from . import messages as m
from .buffer import COIBuffer, localstore_path
from .pipeline import CardContext, OffloadBinary, PipelineError
from .services import ClientChannel, COIError, ServerLoop

if TYPE_CHECKING:  # pragma: no cover
    from ..osim.fs import File
    from .engine import COIEngine


# ---------------------------------------------------------------------------
# Card side
# ---------------------------------------------------------------------------


def card_main_factory(binary: OffloadBinary):
    """Build the offload process's main program for ``binary``.

    The same factory serves fresh launches and BLCR restarts: the restored
    path is taken when the store carries ``_blcr_restored``.
    """

    def main(proc: SimProcess):
        runtime = CardRuntime(proc, binary)
        if proc.store.get("_blcr_restored"):
            yield from runtime.restore()
        else:
            yield from runtime.fresh_start()

    return main


class CardRuntime:
    """Offload-process-side COI runtime."""

    def __init__(self, proc: SimProcess, binary: OffloadBinary):
        self.proc = proc
        self.sim = proc.sim
        self.binary = binary
        proc.runtime["coi"] = self
        self.phi_os: OSInstance = proc.os
        self.eps: Dict[str, ScifEndpoint] = {}
        self.event_client: Optional[ClientChannel] = None
        self.log_client: Optional[ClientChannel] = None
        #: Case-4 offload-side lock around the result send.
        self.pipeline_result_mutex = Mutex(self.sim, name=f"{proc.name}.result-send")
        self.paused = False
        self._buffers: Dict[int, Dict[str, Any]] = {}
        self.functions_executed = 0
        #: Asynchronous notification queue: the pipeline server enqueues log
        #: and event records; a dedicated client thread pushes them out.
        #: (Real COI's event/log clients are their own threads — and this
        #: decoupling is what keeps the pause protocol deadlock-free: the
        #: server's completion path never blocks on a quiesced channel.)
        self._notify_queue: Optional[Any] = None
        self._pipeline_busy = False

    @property
    def snapify_enabled(self) -> bool:
        return self.proc.store.get("_snapify_enabled", True)

    # -- startup paths -------------------------------------------------------
    def fresh_start(self):
        from ..snapify.agent import install_signal_handler  # Snapify-modified COI

        store = self.proc.store
        store.setdefault("buffers", {})
        store.setdefault("pipeline", {"inflight": None, "pending_result": None})
        store["_coi_binary"] = self.binary
        install_signal_handler(self.proc)
        # Dynamic load of the offload library shipped by the host.
        yield self.sim.timeout(self._phi_params().dyld_latency)
        self.proc.map_region("image", self.binary.image_size, kind="text")
        yield from self._accept_channels(store["_listen_port"])
        self._start_servers()

    def restore(self):
        """Restored path: local store files were already copied back to the
        card by the COI daemon; reattach buffers, reconnect channels,
        re-register RDMA windows, and finish any in-flight function."""
        from ..snapify.agent import attach_restored_agent, install_signal_handler

        store = self.proc.store
        self._enter_paused()  # blocked until snapify_resume, per §4.3
        install_signal_handler(self.proc)
        # The agent must greet the daemon before we block in accept: the
        # daemon only hands the reconnect port to the host after the hello.
        attach_restored_agent(self.proc)
        try:
            for buf_id, info in store["buffers"].items():
                if not self.phi_os.fs.exists(info["path"]):
                    raise COIError(f"restore: local store file missing: {info['path']}")
                self._buffers[buf_id] = dict(info)
        except BaseException as exc:
            # Dying before _accept_channels fires the listening rendezvous
            # would leave the daemon waiting on it forever: fail the event
            # so the restore turns into a clean operation failure.
            listening = self.proc.runtime.get("listening")
            if listening is not None and not listening.triggered:
                listening.fail(COIError(f"restore aborted before listen: {exc}"))
            raise
        yield from self._accept_channels(store["_listen_port"])
        self.finish_enter_paused()
        # Re-register every buffer: offsets WILL differ from the originals.
        for buf_id, entry in self._buffers.items():
            offset = yield from scif_register(self.eps["dma"], entry["size"])
            entry["offset"] = offset
        self._start_servers()
        self.proc.spawn_thread(self._resume_inflight(), name="resume-inflight", daemon=True)

    def _phi_params(self):
        return self.proc.os.hw.node.params.phi  # type: ignore[attr-defined]

    def _accept_channels(self, port: int):
        net = ScifNetwork.of(self.proc.os.hw.node)  # type: ignore[attr-defined]
        listener = net.listen(self.proc.os, port)
        listening = self.proc.runtime.get("listening")
        if listening is not None and not listening.triggered:
            listening.succeed(None)
        try:
            for _ in m.CHANNELS:
                ep = yield listener.accept()
                name = yield ep.recv()
                self.eps[name] = ep
                self.proc.open_fds.append(ep)  # reset peers when we die
        finally:
            listener.close()
        self.event_client = ClientChannel(self.sim, self.eps["event"], f"{self.proc.name}.event")
        self.log_client = ClientChannel(self.sim, self.eps["log"], f"{self.proc.name}.log")

    def _start_servers(self):
        from ..sim.channel import Channel

        self.cmd_server = ServerLoop(self.proc, self.eps["cmd"], self._handle_cmd,
                                     name=f"{self.proc.name}.cmd")
        self.control_server = ServerLoop(self.proc, self.eps["control"], self._handle_control,
                                         name=f"{self.proc.name}.control")
        self._notify_queue = Channel(self.sim, name=f"{self.proc.name}.notify-q")
        self.proc.spawn_thread(self._notifier_thread(), name="notify-client", daemon=True)
        self.proc.spawn_thread(self._pipeline_server(), name="pipeline-server", daemon=True)

    def _notifier_thread(self):
        """The card-side event/log client thread: drains the notification
        queue into the (pausable) event and log channels."""
        while True:
            try:
                kind, msg = yield self._notify_queue.recv()
            except Exception:
                return
            client = self.event_client if kind == "event" else self.log_client
            yield from client.notify(msg)

    # -- quiesce hooks (driven by the Snapify card agent) ----------------------
    def quiesce(self):
        """Sub-generator: offload-side half of the drain protocol.

        Case 3: shut down the event and log channels (offload is the client).
        Case 4: take the result-send lock — but only once the pipeline
        server is between requests. Taking it mid-request would wedge the
        server's completion path while a host caller still holds the
        request-send lock: a cross-process deadlock against the host-side
        half of the pause (found by the concurrency stress tests).
        """
        reg = MetricsRegistry.of(self.sim)
        yield from self.event_client.snapify_shutdown()
        yield from self.log_client.snapify_shutdown()
        reg.counter("snapify.drain.case3").inc(2)  # event + log channels
        # The cmd/control servers must be between requests too: a pause
        # landing mid-BUFFER_CREATE would save the local store before the
        # new buffer commits while the (later) context capture records it —
        # a torn snapshot that cannot be restored.
        while (
            self._pipeline_busy
            or ("pipeline" in self.eps and self.eps["pipeline"].pending)
            or self.cmd_server.busy
            or self.control_server.busy
        ):
            yield self.sim.timeout(100e-6)
        yield self.pipeline_result_mutex.acquire(owner="snapify")
        reg.counter("snapify.drain.case4").inc()
        self.paused = True

    def _enter_paused(self) -> None:
        """Restored processes start paused without any channel handshake."""
        assert self.event_client is None  # before channels exist
        self.paused = True
        self._paused_before_channels = True

    def finish_enter_paused(self) -> None:
        """After channels exist, take the locks that quiesce() would hold."""
        if getattr(self, "_paused_before_channels", False):
            self.event_client.shut_down = True
            assert self.event_client.mutex.try_acquire("snapify")
            self.log_client.shut_down = True
            assert self.log_client.mutex.try_acquire("snapify")
            assert self.pipeline_result_mutex.try_acquire("snapify")
            self._paused_before_channels = False

    def release(self) -> None:
        """Offload-side half of snapify_resume: drop every quiesce lock."""
        if not self.paused:
            raise COIError(f"{self.proc.name}: release() while not paused")
        self.event_client.snapify_release()
        self.log_client.snapify_release()
        self.pipeline_result_mutex.release()
        self.paused = False

    def channels_empty(self) -> bool:
        """Drain invariant: no message in flight on any channel."""
        return all(ep.pending == 0 for ep in self.eps.values())

    # -- local store / buffers ---------------------------------------------------
    def buffer_file(self, buf_id: int) -> "File":
        entry = self._buffers.get(buf_id)
        if entry is None:
            raise COIError(f"{self.proc.name}: unknown buffer {buf_id}")
        return self.phi_os.fs.stat(entry["path"])

    def local_store_bytes(self) -> int:
        return sum(e["size"] for e in self._buffers.values())

    def local_store_files(self) -> List[str]:
        return [e["path"] for e in self._buffers.values()]

    def _handle_cmd(self, msg: Any):
        mtype = msg.get("type")
        if mtype == m.BUFFER_CREATE:
            buf_id, size = msg["buf_id"], msg["size"]
            path = localstore_path(self.proc.pid, buf_id)
            # Local store allocation: RAM-FS pages on the card.
            yield from self.phi_os.fs.write(path, size)
            offset = yield from scif_register(self.eps["dma"], size)
            entry = {"id": buf_id, "size": size, "path": path, "offset": offset}
            self._buffers[buf_id] = entry
            self.proc.store["buffers"][buf_id] = {
                "id": buf_id, "size": size, "path": path,
            }
            return {"type": m.REPLY, "offset": offset, "path": path}
        if mtype == m.BUFFER_DESTROY:
            entry = self._buffers.pop(msg["buf_id"], None)
            if entry is None:
                return {"type": m.REPLY, "ok": False}
            self.proc.store["buffers"].pop(msg["buf_id"], None)
            self.phi_os.fs.unlink(entry["path"])
            return {"type": m.REPLY, "ok": True}
        if mtype == m.BUFFER_REREGISTER:
            offsets = {bid: e["offset"] for bid, e in self._buffers.items()}
            return {"type": m.REPLY, "offsets": offsets}
        raise COIError(f"{self.proc.name}: unknown cmd {mtype!r}")

    def _handle_control(self, msg: Any):
        if msg.get("type") == "coi.terminate":
            return {"type": m.REPLY, "ok": True}
        raise COIError(f"{self.proc.name}: unknown control message {msg!r}")
        yield  # pragma: no cover - generator form

    # -- pipeline (run-function server) ---------------------------------------------
    def _pipeline_server(self):
        while True:
            try:
                msg = yield self.eps["pipeline"].recv()
            except (ConnectionReset, Interrupted):
                return  # host went away; the daemon will reap us
            if not (isinstance(msg, dict) and msg.get("type") == m.RUN_FUNCTION):
                raise COIError(f"pipeline: unexpected message {msg!r}")
            self._pipeline_busy = True
            try:
                yield from self._execute(msg)
            finally:
                self._pipeline_busy = False

    def _execute(self, msg: Dict[str, Any]):
        fn = self.binary.function(msg["fn"])
        duration = fn.duration_for(msg["args"])
        pl = self.proc.store["pipeline"]
        pl["inflight"] = {
            "seq": msg["seq"], "fn": msg["fn"], "args": msg["args"],
            "started_at": self.sim.now, "duration": duration,
            "async": msg.get("async", False),
        }
        yield self.sim.timeout(duration)
        yield from self._complete(msg["fn"], msg["args"], msg["seq"], msg.get("async", False))

    def _complete(self, fn_name: str, args: Any, seq: int, is_async: bool):
        fn = self.binary.function(fn_name)
        result = fn.apply(CardContext(self), args)
        self.functions_executed += 1
        pl = self.proc.store["pipeline"]
        pl["inflight"] = None
        pl["pending_result"] = {"seq": seq, "value": result, "async": is_async}
        # Non-blocking: the notifier client thread delivers these; the
        # completion path must never block on a (possibly quiesced)
        # event/log channel.
        yield self._notify_queue.send(
            ("log", {"type": m.LOG_RECORD, "fn": fn_name, "seq": seq}))
        if is_async:
            yield self._notify_queue.send(
                ("event", {"type": m.EVENT_FUNCTION_DONE, "seq": seq}))
        # Case-4 send site: blocking (rendezvous) send under the result lock.
        reply = {"type": m.FUNCTION_RESULT, "seq": seq, "value": result}
        if self.snapify_enabled:
            yield self.sim.timeout(SNAPIFY_LOCK_OVERHEAD)
            yield self.pipeline_result_mutex.acquire(owner="result-send")
            try:
                yield from self.eps["pipeline"].send_sync(reply, nbytes=256)
            finally:
                self.pipeline_result_mutex.release()
        else:
            yield from self.eps["pipeline"].send(reply, nbytes=256)
        pl["pending_result"] = None

    def _resume_inflight(self):
        """After a restore: finish the function that was executing (or push
        out a computed-but-unsent result). Exactly-once effect semantics."""
        pl = self.proc.store["pipeline"]
        inflight = pl.get("inflight")
        pending = pl.get("pending_result")
        if inflight is not None:
            captured_at = self.proc.store.get("_blcr_captured_at", inflight["started_at"])
            elapsed = max(0.0, captured_at - inflight["started_at"])
            remaining = max(0.0, inflight["duration"] - elapsed)
            yield self.sim.timeout(remaining)
            yield from self._complete(
                inflight["fn"], inflight["args"], inflight["seq"], inflight["async"]
            )
        elif pending is not None:
            yield self.pipeline_result_mutex.acquire(owner="resend")
            try:
                yield from self.eps["pipeline"].send_sync(
                    {"type": m.FUNCTION_RESULT, "seq": pending["seq"],
                     "value": pending["value"]}, nbytes=256
                )
            finally:
                self.pipeline_result_mutex.release()
            pl["pending_result"] = None


# ---------------------------------------------------------------------------
# Host side
# ---------------------------------------------------------------------------


#: CPU cost of one Snapify-added lock site on the hot path (lock, fence,
#: active-request bookkeeping in the modified COI runtime). Calibrated so
#: the Fig. 9 per-call overhead lands at the paper's ~1.5% mean / <5% max.
SNAPIFY_LOCK_OVERHEAD = 11e-6


class COIProcess:
    """Host-side handle to one offload process (``COIProcess*``).

    ``snapify_enabled`` selects the Snapify-modified COI runtime (drain
    locks on the hot paths, blocking pipeline sends). Disabling it gives
    the stock-MPSS baseline of Fig. 9 — faster per call, but unsnapshotable.
    """

    def __init__(
        self,
        host_proc: SimProcess,
        engine: "COIEngine",
        binary: OffloadBinary,
        offload_proc: SimProcess,
        daemon_ep: ScifEndpoint,
        eps: Dict[str, ScifEndpoint],
        snapify_enabled: bool = True,
    ):
        self.snapify_enabled = snapify_enabled
        self.host_proc = host_proc
        self.sim = host_proc.sim
        self.engine = engine
        self.binary = binary
        self.offload_proc = offload_proc
        self.daemon_ep = daemon_ep
        self.eps = eps
        self.dead = False

        # Drain locks: case 1 (lifecycle), case 2 (RDMA), case 4 (host send).
        self.lifecycle_mutex = Mutex(self.sim, name=f"{host_proc.name}.coi.lifecycle")
        self.dma_mutex = Mutex(self.sim, name=f"{host_proc.name}.coi.dma")
        self.pipeline_send_mutex = Mutex(self.sim, name=f"{host_proc.name}.coi.pipe-send")
        self.paused = False

        self.cmd_client = ClientChannel(self.sim, eps["cmd"], f"{host_proc.name}.cmd")
        self.control_client = ClientChannel(self.sim, eps["control"], f"{host_proc.name}.control")

        #: (old -> new) RDMA address table maintained across restores (§4.3).
        self.rdma_address_map: Dict[int, int] = {}
        self.buffers: Dict[int, COIBuffer] = {}
        self._buf_ids = itertools.count(1)
        self.logs: List[Any] = []
        self.events_seen: List[Any] = []

        # Process-level waiter registry survives handle replacement on swap.
        host_proc.runtime.setdefault("coi_waiters", {})

        self._event_server = ServerLoop(host_proc, eps["event"], self._handle_event,
                                        name=f"{host_proc.name}.event-srv")
        self._log_server = ServerLoop(host_proc, eps["log"], self._handle_log,
                                      name=f"{host_proc.name}.log-srv")
        self._pipeline_recv = host_proc.spawn_thread(
            self._pipeline_recv_loop(), name="pipeline-recv", daemon=True
        )
        self._pipeline_rebound: Optional[Event] = None

    # -- event/log servers -------------------------------------------------------
    def _handle_event(self, msg: Any):
        self.events_seen.append(msg)
        return None
        yield  # pragma: no cover

    def _handle_log(self, msg: Any):
        self.logs.append(msg)
        return None
        yield  # pragma: no cover

    # -- pipeline ----------------------------------------------------------------
    def _pipeline_recv_loop(self):
        while True:
            try:
                msg = yield self.eps["pipeline"].recv()
            except (ConnectionReset, Interrupted):
                return  # handle is dead; a restored handle runs its own loop
            if isinstance(msg, dict) and msg.get("type") == m.FUNCTION_RESULT:
                # Record delivery in the store FIRST (no yield in between):
                # a host snapshot therefore never shows a consumed result
                # that the store does not know about.
                self.host_proc.store.setdefault("coi_results", {})[msg["seq"]] = msg["value"]
                waiter = self.host_proc.runtime["coi_waiters"].pop(msg["seq"], None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(msg["value"])

    def next_seq(self) -> int:
        seq = self.host_proc.store.get("coi_next_seq", 0)
        self.host_proc.store["coi_next_seq"] = seq + 1
        return seq

    def wait_result(self, seq: int) -> Event:
        """Event for an outstanding run-function result (used after restores).

        Results already delivered (recorded in the host store by the recv
        loop, possibly before this handle existed) resolve immediately.
        """
        recorded = self.host_proc.store.get("coi_results", {})
        if seq in recorded:
            ev = Event(self.sim, name=f"coi.result:{seq}")
            ev.succeed(recorded[seq])
            return ev
        waiters = self.host_proc.runtime["coi_waiters"]
        ev = waiters.get(seq)
        if ev is None:
            ev = Event(self.sim, name=f"coi.result:{seq}")
            waiters[seq] = ev
        return ev

    def run_function(self, fn_name: str, args: Any = None, is_async: bool = False,
                     args_bytes: int = 256, key: Any = None):
        """Sub-generator: execute an offload region; returns its result.

        This is the Fig. 4 flow: a request send under the case-4 lock
        (blocking/rendezvous when Snapify support is on), then wait for the
        result message. With ``key``, the call is *exactly-once across
        snapshots*: the (key -> seq) binding is recorded in the host store
        under the send lock, so a snapshot either shows no trace of the
        call or a fully issued one — never a half-sent request.
        """
        self._check_alive()
        if fn_name not in self.binary.functions:
            raise PipelineError(f"no offload function {fn_name!r}")
        seq = self.next_seq()
        ev = self.wait_result(seq)
        if self.snapify_enabled:
            yield self.sim.timeout(2 * SNAPIFY_LOCK_OVERHEAD)
        yield self.pipeline_send_mutex.acquire(owner="run")
        try:
            if key is not None:
                self.host_proc.store.setdefault("coi_calls", {})[key] = seq
            request = {"type": m.RUN_FUNCTION, "seq": seq, "fn": fn_name,
                       "args": args, "async": is_async}
            if self.snapify_enabled:
                yield from self.eps["pipeline"].send_sync(request, nbytes=args_bytes)
            else:
                yield from self.eps["pipeline"].send(request, nbytes=args_bytes)
        finally:
            self.pipeline_send_mutex.release()
        if is_async:
            return seq  # caller collects with wait_result(seq)
        result = yield ev
        return result

    def start_function(self, fn_name: str, args: Any = None, key: Any = None):
        """Sub-generator: asynchronous run; returns the seq to wait on."""
        seq = yield from self.run_function(fn_name, args, is_async=True, key=key)
        return seq

    def run_function_keyed(self, key: Any, fn_name: str, args: Any = None):
        """Sub-generator: exactly-once run-function for resumable programs.

        If a snapshot/restart interrupted an earlier attempt, the recorded
        (key, seq) binding is honored: a delivered result is returned from
        the store, an in-flight one is awaited — the function is never
        executed twice for the same key.
        """
        calls = self.host_proc.store.setdefault("coi_calls", {})
        if key in calls:
            seq = calls[key]
            result = yield self.wait_result(seq)
            return result
        result = yield from self.run_function(fn_name, args, key=key)
        return result

    # -- buffers -------------------------------------------------------------------
    def buffer_create(self, size: int):
        """Sub-generator: create a COI buffer backed by card local store."""
        self._check_alive()
        buf_id = next(self._buf_ids)
        reply = yield from self.cmd_client.rpc(
            {"type": m.BUFFER_CREATE, "buf_id": buf_id, "size": size}
        )
        buf = COIBuffer(buf_id=buf_id, size=size,
                        rdma_offset=reply["offset"], localstore_path=reply["path"])
        self.buffers[buf_id] = buf
        self.host_proc.store.setdefault("coi_buffers", {})[buf_id] = size
        return buf

    def buffer_destroy(self, buf: COIBuffer):
        self._check_alive()
        yield from self.cmd_client.rpc({"type": m.BUFFER_DESTROY, "buf_id": buf.buf_id})
        self.buffers.pop(buf.buf_id, None)
        self.host_proc.store.get("coi_buffers", {}).pop(buf.buf_id, None)

    def translate_offset(self, offset: int) -> int:
        """Resolve an RDMA offset through the (old, new) address table."""
        seen = set()
        while offset in self.rdma_address_map:
            if offset in seen:  # pragma: no cover - defensive
                raise COIError("cycle in RDMA address table")
            seen.add(offset)
            offset = self.rdma_address_map[offset]
        return offset

    def buffer_write(self, buf: COIBuffer, payload: Any = None, nbytes: Optional[int] = None):
        """Sub-generator: host -> card RDMA into the buffer (case-2 site)."""
        self._check_alive()
        if self.snapify_enabled:
            yield self.sim.timeout(SNAPIFY_LOCK_OVERHEAD)
        yield self.dma_mutex.acquire(owner="write")
        try:
            offset = self.translate_offset(buf.rdma_offset)
            yield from scif_vwriteto(self.eps["dma"], offset, nbytes or buf.size)
            if payload is not None:
                if not self.offload_proc.alive:
                    raise COIError("offload process died during buffer write")
                # RDMA is one-sided: the data lands in the card pages
                # without card CPU involvement.
                runtime: CardRuntime = self.offload_proc.runtime["coi"]
                runtime.buffer_file(buf.buf_id).payload = payload
        finally:
            self.dma_mutex.release()

    def buffer_read(self, buf: COIBuffer, nbytes: Optional[int] = None):
        """Sub-generator: card -> host RDMA out of the buffer; returns payload."""
        self._check_alive()
        if self.snapify_enabled:
            yield self.sim.timeout(SNAPIFY_LOCK_OVERHEAD)
        yield self.dma_mutex.acquire(owner="read")
        try:
            offset = self.translate_offset(buf.rdma_offset)
            yield from scif_vreadfrom(self.eps["dma"], offset, nbytes or buf.size)
            if not self.offload_proc.alive:
                raise COIError("offload process died during buffer read")
            runtime: CardRuntime = self.offload_proc.runtime["coi"]
            return runtime.buffer_file(buf.buf_id).payload
        finally:
            self.dma_mutex.release()

    # -- drain hooks (host side of snapify_pause / snapify_resume) -------------------
    def quiesce(self):
        """Sub-generator: host-side half of the drain protocol.

        Case 1: lifecycle lock. Case 2: DMA lock. Case 3: shut down the cmd
        channel. Case 4: the request-send lock.
        """
        reg = MetricsRegistry.of(self.sim)
        yield self.lifecycle_mutex.acquire(owner="snapify")
        reg.counter("snapify.drain.case1").inc()
        yield self.dma_mutex.acquire(owner="snapify")
        reg.counter("snapify.drain.case2").inc()
        yield from self.cmd_client.snapify_shutdown()
        reg.counter("snapify.drain.case3").inc()
        yield self.pipeline_send_mutex.acquire(owner="snapify")
        reg.counter("snapify.drain.case4").inc()
        self.paused = True

    def release(self) -> None:
        """Host-side half of snapify_resume."""
        if not self.paused:
            raise COIError(f"{self.host_proc.name}: release() while not paused")
        self.pipeline_send_mutex.release()
        self.cmd_client.snapify_release()
        self.dma_mutex.release()
        self.lifecycle_mutex.release()
        self.paused = False

    def channels_empty(self) -> bool:
        card: CardRuntime = self.offload_proc.runtime["coi"]
        return (
            all(ep.pending == 0 for ep in self.eps.values()) and card.channels_empty()
        )

    # -- lifecycle ---------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self.dead:
            raise COIError("operation on a dead COIProcess handle")
        if not self.offload_proc.alive:
            raise COIError(
                f"offload process pid {self.offload_proc.pid} is gone "
                "(crashed or card failure)"
            )

    def destroy(self):
        """Sub-generator: orderly teardown (case-1 critical region)."""
        self._check_alive()
        yield self.lifecycle_mutex.acquire(owner="destroy")
        try:
            yield from self.control_client.rpc({"type": "coi.terminate"})
            yield from self.daemon_ep.send({"type": m.SHUTDOWN_PROC,
                                            "pid": self.offload_proc.pid})
            ack = yield self.daemon_ep.recv()
            if not (isinstance(ack, dict) and ack.get("ok")):
                raise COIError(f"daemon refused shutdown: {ack!r}")
        finally:
            self.lifecycle_mutex.release()
        self.mark_dead()

    def mark_dead(self) -> None:
        self.dead = True
        for ep in self.eps.values():
            ep.close()
        if not self.daemon_ep.closed:
            self.daemon_ep.close()
