"""Figure 11: checkpoint/restart of MPI offload applications (LU-MZ, SP-MZ,
BT-MZ, class C) on the 4-node cluster with 1, 2 and 4 ranks.

Shape criteria from §7:
* (a) checkpoint time DECREASES as rank count grows ("the checkpoint size
  of each MPI rank decreases as the total number of MPI ranks increases");
* (b) restart time follows the same trend;
* (c) per-rank checkpoint size shrinks with rank count;
* CR times are seconds-scale (paper: 4-14 s per checkpoint) — small enough
  against multi-minute runtimes to take frequent checkpoints.
"""

from __future__ import annotations

import pytest

from repro.apps import NAS_MZ_BENCHMARKS
from repro.apps.nas_mz import MZJob
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.mpi import mpi_checkpoint, mpi_restart
from repro.testbed import XeonPhiCluster

BENCHES = ["LU-MZ", "SP-MZ", "BT-MZ"]
RANK_COUNTS = [1, 2, 4]


def run_fig11():
    results = {}
    for bench in BENCHES:
        for n in RANK_COUNTS:
            cluster = XeonPhiCluster(n_nodes=4)
            job = MZJob(cluster, NAS_MZ_BENCHMARKS[bench], n, iterations=4000)
            out = {}

            def driver(sim):
                yield from job.launch()
                yield sim.timeout(1.0)
                ck = yield from mpi_checkpoint(job, f"/snap/{bench}")
                out["ckpt"] = ck
                yield sim.timeout(0.2)
                for rank in job.ranks:  # cluster-wide failure
                    rank.host_proc.terminate(code=1)
                yield sim.timeout(0.05)
                for server in cluster.servers[:n]:
                    server.host_os.fs.drop_caches()
                rs = yield from mpi_restart(job, f"/snap/{bench}")
                out["restart"] = rs

            cluster.run(driver(cluster.sim))
            results[(bench, n)] = out
    return results


@pytest.fixture(scope="module")
def fig11():
    return run_fig11()


def test_fig11_report(fig11, sim_benchmark):
    sim_benchmark(lambda: None)
    t = ResultTable(
        "Figure 11 — MPI checkpoint/restart (class C)",
        ["benchmark", "ranks", "checkpoint", "restart", "size/rank"],
    )
    for bench in BENCHES:
        for n in RANK_COUNTS:
            out = fig11[(bench, n)]
            size = out["ckpt"]["rank_snapshot_bytes"][0]
            t.add_row(
                bench, n,
                fmt_time(out["ckpt"]["elapsed"]),
                fmt_time(out["restart"]["elapsed"]),
                fmt_bytes(size),
            )
    t.add_note("paper: CR 4-14 s, decreasing with rank count; per-rank "
               "snapshot shrinks as ranks grow")
    t.show()
    test_checkpoint_time_decreases_with_ranks(fig11)
    test_restart_time_decreases_with_ranks(fig11)
    test_per_rank_size_shrinks(fig11)
    test_cr_cost_supports_frequent_checkpoints(fig11)


def test_checkpoint_time_decreases_with_ranks(fig11):
    for bench in BENCHES:
        times = [fig11[(bench, n)]["ckpt"]["elapsed"] for n in RANK_COUNTS]
        assert times[0] > times[1] > times[2], f"{bench}: {times}"


def test_restart_time_decreases_with_ranks(fig11):
    for bench in BENCHES:
        times = [fig11[(bench, n)]["restart"]["elapsed"] for n in RANK_COUNTS]
        assert times[0] > times[1] > times[2], f"{bench}: {times}"


def test_per_rank_size_shrinks(fig11):
    for bench in BENCHES:
        sizes = [
            fig11[(bench, n)]["ckpt"]["rank_snapshot_bytes"][0] for n in RANK_COUNTS
        ]
        assert sizes[0] > sizes[1] > sizes[2], f"{bench}: {sizes}"


def test_cr_cost_supports_frequent_checkpoints(fig11):
    """Checkpoints cost seconds; class-C runs take minutes. The conclusion
    the paper draws — frequent checkpointing is feasible — must hold."""
    for bench in BENCHES:
        for n in RANK_COUNTS:
            ck = fig11[(bench, n)]["ckpt"]["elapsed"]
            assert 0.2 < ck < 20.0, f"{bench}/{n}: {ck:.1f}s"
