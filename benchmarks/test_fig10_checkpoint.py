"""Figure 10(a)+(b): checkpoint time breakdown and checkpoint file sizes
for the 8 OpenMP benchmarks.

Shape criteria from §7:
* pause is longer for benchmarks with large local stores (SS, SG);
* the host-side BLCR snapshot dominates for SS and SG (their host snapshots
  are the biggest files, up to ~1.3 GB), while their offload snapshots are
  comparatively small;
* checkpoint file sizes span ~8 MB to ~1.3 GB across the suite;
* total checkpoint time is seconds-scale, largest for SS/SG, smallest for MC.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OPENMP_NAMES, OffloadApplication
from repro.hw.params import GB, MB
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.snapify import checkpoint_offload_app, snapify_t
from repro.testbed import XeonPhiServer


def run_checkpoints():
    results = {}
    for name in OPENMP_NAMES:
        profile = replace(OPENMP_BENCHMARKS[name], iterations=10_000)
        server = XeonPhiServer()
        app = OffloadApplication(server, profile)

        def driver(sim):
            yield from app.launch()
            yield sim.timeout(1.0)  # mid-run
            snap = snapify_t(snapshot_path=f"/snap/{name}", coiproc=app.coiproc)
            yield from checkpoint_offload_app(snap)
            return snap

        snap = server.run(driver(server.sim))
        results[name] = snap
    return results


@pytest.fixture(scope="module")
def fig10ab():
    return run_checkpoints()


def test_fig10ab_report(fig10ab, sim_benchmark):
    sim_benchmark(lambda: None)
    t = ResultTable(
        "Figure 10(a) — checkpoint time breakdown",
        ["benchmark", "pause", "host snapshot", "device capture", "total"],
    )
    for name in OPENMP_NAMES:
        s = fig10ab[name]
        t.add_row(
            name,
            fmt_time(s.timings["pause"]),
            fmt_time(s.timings["host_snapshot"]),
            fmt_time(s.timings["capture"]),
            fmt_time(s.timings["checkpoint_total"]),
        )
    t.add_note("paper: totals 3-21 s; pause dominated by local-store save; "
               "host snapshot dominates SS/SG")
    t.show()

    t = ResultTable(
        "Figure 10(b) — checkpoint file sizes",
        ["benchmark", "host snapshot", "offload snapshot", "local store"],
    )
    for name in OPENMP_NAMES:
        s = fig10ab[name]
        t.add_row(
            name,
            fmt_bytes(s.sizes["host_snapshot"]),
            fmt_bytes(s.sizes["offload_snapshot"]),
            fmt_bytes(s.sizes["local_store"]),
        )
    t.add_note("paper: sizes range ~8 MB to ~1.3 GB; SS/SG: big host "
               "snapshot + big local store, small offload snapshot")
    t.show()
    test_ss_sg_have_biggest_host_snapshots(fig10ab)
    test_size_range_matches_paper(fig10ab)
    test_mc_cheapest_ss_most_expensive(fig10ab)
    test_pause_tracks_local_store(fig10ab)
    test_host_side_dominates_for_ss_sg(fig10ab)


def test_ss_sg_have_biggest_host_snapshots(fig10ab):
    hosts = {n: s.sizes["host_snapshot"] for n, s in fig10ab.items()}
    top_two = sorted(hosts, key=hosts.get, reverse=True)[:2]
    assert set(top_two) == {"SS", "SG"}
    # ... while their offload snapshots are comparatively small.
    for n in ("SS", "SG"):
        assert fig10ab[n].sizes["offload_snapshot"] < hosts[n] / 4


def test_size_range_matches_paper(fig10ab):
    all_sizes = [
        s.sizes[k]
        for s in fig10ab.values()
        for k in ("host_snapshot", "offload_snapshot", "local_store")
    ]
    assert min(all_sizes) < 30 * MB
    assert 1.0 * GB < max(all_sizes) < 1.8 * GB  # paper caps at ~1.3 GB


def test_mc_cheapest_ss_most_expensive(fig10ab):
    totals = {n: s.timings["checkpoint_total"] for n, s in fig10ab.items()}
    assert min(totals, key=totals.get) == "MC"
    assert max(totals, key=totals.get) in ("SS", "SG")
    assert totals["SS"] > 4 * totals["MC"]


def test_pause_tracks_local_store(fig10ab):
    """Pause time ordering follows local-store size ordering."""
    pauses = {n: s.timings["pause"] for n, s in fig10ab.items()}
    ls = {n: s.sizes["local_store"] for n, s in fig10ab.items()}
    assert max(pauses, key=pauses.get) == max(ls, key=ls.get) == "SS"
    assert pauses["SS"] > 2 * pauses["MC"]


def test_host_side_dominates_for_ss_sg(fig10ab):
    for n in ("SS", "SG"):
        s = fig10ab[n]
        assert s.timings["host_snapshot"] > s.timings["capture"]
    # ... and the reverse for a card-heavy benchmark like FT.
    s = fig10ab["FT"]
    assert s.timings["capture"] > s.timings["host_snapshot"]
