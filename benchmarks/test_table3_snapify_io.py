"""Table 3: file copy time between host and Xeon Phi — scp vs NFS vs
Snapify-IO, 1 MB to 1 GB, both directions.

Shape criteria from §7:
* NFS wins at 1 MB ("where NFS outperforms others by buffering data");
* Snapify-IO beats NFS and scp everywhere else, more so as size grows;
* at 1 GB: ~6x vs NFS write, ~3x vs NFS read, ~30x vs scp write, ~22x vs
  scp read (we accept generous bands around these);
* Phi->host (write) is faster than host->Phi (read) for Snapify-IO.
"""

from __future__ import annotations

import pytest

from repro.apps.native import copy_microbenchmark
from repro.hw.params import GB, MB
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.testbed import XeonPhiServer

SIZES = [1 * MB, 16 * MB, 64 * MB, 256 * MB, 1 * GB]
METHODS = ["scp", "nfs", "snapify-io"]
DIRECTIONS = ["to_host", "to_phi"]


def run_table3():
    results = {}
    for direction in DIRECTIONS:
        for method in METHODS:
            for size in SIZES:
                server = XeonPhiServer()  # fresh caches per cell

                def driver(sim, method=method, direction=direction, size=size):
                    elapsed = yield from copy_microbenchmark(
                        server, method, direction, size
                    )
                    return elapsed

                results[(direction, method, size)] = server.run(driver(server.sim))
    return results


@pytest.fixture(scope="module")
def table3():
    return run_table3()


def test_table3_report(table3, sim_benchmark):
    sim_benchmark(lambda: None)  # table built once by the fixture
    for direction, label in [
        ("to_host", "Phi -> host (write)"),
        ("to_phi", "host -> Phi (read)"),
    ]:
        table = ResultTable(
            f"Table 3 — file copy, {label}",
            ["size", "scp", "nfs", "snapify-io", "sio/nfs", "sio/scp"],
        )
        for size in SIZES:
            scp = table3[(direction, "scp", size)]
            nfs = table3[(direction, "nfs", size)]
            sio = table3[(direction, "snapify-io", size)]
            table.add_row(
                fmt_bytes(size), fmt_time(scp), fmt_time(nfs), fmt_time(sio),
                f"{nfs / sio:.1f}x", f"{scp / sio:.1f}x",
            )
        table.add_note("paper at 1 GB: ~6x (write) / ~3x (read) vs NFS; "
                       "~30x (write) / ~22x (read) vs scp")
        table.show()
    # Shape criteria (also checked by the granular tests below, which run
    # under plain `pytest benchmarks/`):
    test_nfs_wins_at_1mb(table3)
    test_snapify_io_wins_at_scale(table3)
    test_1gb_ratios_match_paper_bands(table3)
    test_advantage_grows_with_size(table3)
    test_write_direction_faster_than_read(table3)


def test_nfs_wins_at_1mb(table3):
    for direction in DIRECTIONS:
        nfs = table3[(direction, "nfs", 1 * MB)]
        sio = table3[(direction, "snapify-io", 1 * MB)]
        scp = table3[(direction, "scp", 1 * MB)]
        assert nfs < sio < scp


def test_snapify_io_wins_at_scale(table3):
    for direction in DIRECTIONS:
        for size in SIZES[1:]:
            sio = table3[(direction, "snapify-io", size)]
            assert sio < table3[(direction, "nfs", size)]
            assert sio < table3[(direction, "scp", size)]


def test_1gb_ratios_match_paper_bands(table3):
    w_nfs = table3[("to_host", "nfs", GB)] / table3[("to_host", "snapify-io", GB)]
    r_nfs = table3[("to_phi", "nfs", GB)] / table3[("to_phi", "snapify-io", GB)]
    w_scp = table3[("to_host", "scp", GB)] / table3[("to_host", "snapify-io", GB)]
    r_scp = table3[("to_phi", "scp", GB)] / table3[("to_phi", "snapify-io", GB)]
    assert 3.0 < w_nfs < 10.0, f"write vs NFS: {w_nfs:.1f}x (paper ~6x)"
    assert 1.5 < r_nfs < 6.0, f"read vs NFS: {r_nfs:.1f}x (paper ~3x)"
    assert 15.0 < w_scp < 45.0, f"write vs scp: {w_scp:.1f}x (paper ~30x)"
    assert 10.0 < r_scp < 35.0, f"read vs scp: {r_scp:.1f}x (paper ~22x)"


def test_advantage_grows_with_size(table3):
    for direction in DIRECTIONS:
        ratios = [
            table3[(direction, "nfs", s)] / table3[(direction, "snapify-io", s)]
            for s in SIZES
        ]
        assert ratios[-1] > ratios[0]


def test_write_direction_faster_than_read(table3):
    for size in SIZES[2:]:
        assert (
            table3[("to_host", "snapify-io", size)]
            < table3[("to_phi", "snapify-io", size)]
        )
