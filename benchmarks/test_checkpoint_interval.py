"""Extension: does the paper's conclusion hold quantitatively?

The paper closes: checkpoints are cheap enough "to take frequent
checkpoints". This bench quantifies it end-to-end: one offload job runs
under random-ish coprocessor failures while a ResilientRunner checkpoints
at different intervals; completion time is compared across intervals and
against the analytic renewal model behind Young's formula.

Claims validated:
* too-rare checkpoints lose big on each failure, too-frequent ones pay
  constant overhead — the Young interval sits in the efficient valley;
* the simulated completion times track the analytic expected-completion
  model within a reasonable band.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OffloadApplication, expected_checksum
from repro.metrics import ResultTable, fmt_time
from repro.sched import FaultInjector, ResilientRunner, young_interval
from repro.sched.interval import expected_completion_time
from repro.testbed import XeonPhiServer

#: Deterministic failure schedule on mic0 (sim restarts land jobs on mic1,
#: which stays healthy, then back; alternate cards so one always lives).
FAILURE_TIMES = [4.0, 9.5]
WORK_ITERATIONS = 2800  # ~12 s of KM work
CKPT_COST = 0.48        # measured in test_fig10_checkpoint for KM


def run_with_interval(interval: float) -> dict:
    server = XeonPhiServer()
    injector = FaultInjector(server.sim)
    profile = replace(OPENMP_BENCHMARKS["KM"], iterations=WORK_ITERATIONS)
    app = OffloadApplication(server, profile)
    runner = ResilientRunner(server, app, injector, interval=interval,
                             restart_from_scratch=True)

    def driver(sim):
        cards = server.node.phis
        for i, t in enumerate(FAILURE_TIMES):
            # Cards are repaired (reset/replaced) a few seconds after each
            # failure, so some healthy card always exists to restart on.
            injector.schedule_card_failure(cards[i % len(cards)], at=t,
                                           repair_after=3.0)
        store = yield from runner.run()
        return store

    store = server.run(driver(server.sim))
    assert store["checksum"] == expected_checksum(WORK_ITERATIONS)
    return {
        "elapsed": server.now,
        "checkpoints": runner.checkpoints_taken,
        "restarts": runner.restarts,
    }


@pytest.fixture(scope="module")
def sweep():
    intervals = [0.25, 0.6, 1.2, 2.5, 5.0]
    return {i: run_with_interval(i) for i in intervals}


def test_interval_sweep_report(sweep, sim_benchmark):
    sim_benchmark(lambda: None)
    mtbf = 5.5  # mean spacing of the injected failures
    t = ResultTable(
        "Extension — completion time vs checkpoint interval (2 card failures)",
        ["interval", "completion", "checkpoints", "restarts", "analytic model"],
    )
    for interval, r in sweep.items():
        model = expected_completion_time(12.0, interval, CKPT_COST, 1.0, mtbf)
        t.add_row(fmt_time(interval), fmt_time(r["elapsed"]),
                  r["checkpoints"], r["restarts"], fmt_time(model))
    t.add_note(f"Young interval for this job: "
               f"{fmt_time(young_interval(mtbf, CKPT_COST))}")
    t.show()
    test_valley_shape(sweep)
    test_all_runs_survive_failures(sweep)


def test_valley_shape(sweep):
    """Completion time is worse at both extremes than near Young's point."""
    intervals = sorted(sweep)
    times = [sweep[i]["elapsed"] for i in intervals]
    best = min(times)
    # The best interval is strictly interior (not the most or least frequent).
    assert times[0] > best or times[-1] > best
    assert min(times[1:-1]) == best


def test_all_runs_survive_failures(sweep):
    for interval, r in sweep.items():
        assert r["restarts"] >= 1, f"interval {interval}: no failure seen?"
        assert r["checkpoints"] >= 1


def test_checkpoint_count_scales_inversely(sweep):
    intervals = sorted(sweep)
    counts = [sweep[i]["checkpoints"] for i in intervals]
    assert counts[0] > counts[-1]
