"""Figure 10(d): process migration time (card 0 -> card 1).

Shape criteria from §7:
* migration time "is strongly correlated with the size of the local store
  and the snapshot of an offload process";
* MC is the fastest to migrate (paper: 4.9 s) and SS the slowest (31.6 s);
* "In all but one benchmarks the time of capturing and saving the snapshot
  of an offload process is shorter than the time of reading the snapshot
  and restoring" (Snapify-IO writes faster than it reads).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OPENMP_NAMES, OffloadApplication
from repro.metrics import ResultTable, fmt_time
from repro.snapify.usecases import snapify_migration
from repro.testbed import XeonPhiServer


def run_migrations():
    results = {}
    for name in OPENMP_NAMES:
        profile = replace(OPENMP_BENCHMARKS[name], iterations=10_000)
        server = XeonPhiServer()
        app = OffloadApplication(server, profile)

        def driver(sim):
            yield from app.launch()
            yield sim.timeout(1.0)
            new, snap = yield from snapify_migration(
                app.coiproc, server.engine(1), snapshot_path=f"/migr/{name}"
            )
            app.host_proc.runtime["coi_handle"] = new
            assert new.offload_proc.os is server.phi_os(1)
            return snap

        results[name] = server.run(driver(server.sim))
    return results


@pytest.fixture(scope="module")
def fig10d():
    return run_migrations()


def test_fig10d_report(fig10d, sim_benchmark):
    sim_benchmark(lambda: None)
    t = ResultTable(
        "Figure 10(d) — migration time (mic0 -> mic1)",
        ["benchmark", "pause", "capture", "restore", "total"],
    )
    for name in OPENMP_NAMES:
        s = fig10d[name]
        t.add_row(
            name,
            fmt_time(s.timings["pause"]),
            fmt_time(s.timings["capture"]),
            fmt_time(s.timings["restore"]),
            fmt_time(s.timings["migration_total"]),
        )
    t.add_note("paper: 4.9 s (MC) to 31.6 s (SS); restore usually exceeds "
               "capture (Snapify-IO writes beat reads)")
    t.show()
    test_mc_fastest_ss_slowest(fig10d)
    test_time_tracks_state_size(fig10d)
    test_restore_usually_slower_than_capture(fig10d)


def test_mc_fastest_ss_slowest(fig10d):
    totals = {n: s.timings["migration_total"] for n, s in fig10d.items()}
    assert min(totals, key=totals.get) == "MC"
    assert max(totals, key=totals.get) == "SS"
    assert totals["SS"] / totals["MC"] > 3  # paper: 31.6 / 4.9 ≈ 6.4


def test_time_tracks_state_size(fig10d):
    """Migration time correlates with local store + offload snapshot size."""
    totals = {n: s.timings["migration_total"] for n, s in fig10d.items()}
    state = {
        n: OPENMP_BENCHMARKS[n].local_store + OPENMP_BENCHMARKS[n].offload_heap
        for n in OPENMP_NAMES
    }
    by_time = sorted(OPENMP_NAMES, key=totals.get)
    by_state = sorted(OPENMP_NAMES, key=state.get)
    # Rank correlation: at least 6 of 8 in identical rank positions.
    matches = sum(1 for a, b in zip(by_time, by_state) if a == b)
    assert matches >= 6, f"time order {by_time} vs state order {by_state}"


def test_restore_usually_slower_than_capture(fig10d):
    slower = [
        n for n in OPENMP_NAMES
        if fig10d[n].timings["restore"] > fig10d[n].timings["capture"]
    ]
    # Paper: "in all but one benchmarks".
    assert len(slower) >= 7, f"restore>capture only for {slower}"
