"""Figure 9: runtime overhead of Snapify support during normal execution.

Each of the 8 OpenMP benchmarks runs twice — once on stock COI, once on the
Snapify-modified COI (drain locks on the hot paths, blocking pipeline
sends). The paper reports an average overhead of ~1.5 % with a worst case
below 5 % (MD, whose offload calls are the shortest and most frequent).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OPENMP_NAMES, OffloadApplication
from repro.metrics import ResultTable, fmt_time
from repro.testbed import XeonPhiServer

#: Scaled-down iteration counts: the sim is deterministic, so a
#: representative slice gives the same per-call overhead ratio as a full
#: run at a fraction of the wall-clock cost.
ITERS = {"BP": 120, "CG": 100, "FT": 80, "KM": 150, "MC": 80, "MD": 600,
         "SG": 60, "SS": 60}


def run_fig9():
    results = {}
    for name in OPENMP_NAMES:
        profile = replace(OPENMP_BENCHMARKS[name], iterations=ITERS[name])
        for enabled in (False, True):
            server = XeonPhiServer()
            app = OffloadApplication(server, profile, snapify_enabled=enabled)

            def driver(sim):
                t0 = sim.now
                yield from app.run_to_completion()
                return sim.now - t0

            elapsed = server.run(driver(server.sim))
            assert app.verify(), f"{name} produced a wrong checksum"
            results[(name, enabled)] = elapsed
    return results


@pytest.fixture(scope="module")
def fig9():
    return run_fig9()


def overheads(fig9):
    return {
        name: (fig9[(name, True)] - fig9[(name, False)]) / fig9[(name, False)]
        for name in OPENMP_NAMES
    }


def test_fig9_report(fig9, sim_benchmark):
    sim_benchmark(lambda: None)
    ov = overheads(fig9)
    table = ResultTable(
        "Figure 9 — Snapify runtime overhead (normal execution)",
        ["benchmark", "stock COI", "with Snapify", "overhead"],
    )
    for name in OPENMP_NAMES:
        table.add_row(
            name, fmt_time(fig9[(name, False)]), fmt_time(fig9[(name, True)]),
            f"{ov[name] * 100:.2f} %",
        )
    mean = sum(ov.values()) / len(ov)
    table.add_row("mean", "", "", f"{mean * 100:.2f} %")
    table.add_note("paper: mean ~1.5 %, worst case < 5 % (MD)")
    table.show()
    test_overhead_below_five_percent(fig9)
    test_mean_overhead_near_paper(fig9)
    test_md_is_the_worst_case(fig9)


def test_overhead_below_five_percent(fig9):
    for name, o in overheads(fig9).items():
        assert 0.0 < o < 0.05, f"{name}: {o * 100:.2f}%"


def test_mean_overhead_near_paper(fig9):
    ov = overheads(fig9)
    mean = sum(ov.values()) / len(ov)
    assert 0.005 < mean < 0.03, f"mean overhead {mean * 100:.2f}% (paper ~1.5%)"


def test_md_is_the_worst_case(fig9):
    ov = overheads(fig9)
    assert max(ov, key=ov.get) == "MD"
