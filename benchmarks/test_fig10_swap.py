"""Figures 10(e) and 10(f): swap-out and swap-in times.

Shape criteria from §7:
* swap-out: 2.1-11.8 s, swap-in: 2-14.8 s in the paper (seconds-scale,
  smallest for MC, largest for SS);
* "Except in the case of SS and SG, the pause of swapping-out is much
  shorter than the time of the capturing phase" — because SS/SG's local
  stores (saved during pause) are larger than their offload snapshots
  (saved during capture);
* swap-out releases the card memory the job was pinning.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OPENMP_NAMES, OffloadApplication
from repro.metrics import ResultTable, fmt_time
from repro.snapify.usecases import snapify_swapin, snapify_swapout
from repro.testbed import XeonPhiServer


def run_swaps():
    results = {}
    for name in OPENMP_NAMES:
        profile = replace(OPENMP_BENCHMARKS[name], iterations=10_000)
        server = XeonPhiServer()
        app = OffloadApplication(server, profile)

        def driver(sim):
            yield from app.launch()
            yield sim.timeout(1.0)
            ramfs_before = server.node.phis[0].memory.by_category.get("ramfs", 0)
            snap = yield from snapify_swapout(f"/swap/{name}", app.coiproc)
            ramfs_during = server.node.phis[0].memory.by_category.get("ramfs", 0)
            new = yield from snapify_swapin(snap, server.engine(0))
            app.host_proc.runtime["coi_handle"] = new
            return snap, ramfs_before, ramfs_during

        snap, before, during = server.run(driver(server.sim))
        results[name] = (snap, before, during)
    return results


@pytest.fixture(scope="module")
def fig10ef():
    return run_swaps()


def test_fig10ef_report(fig10ef, sim_benchmark):
    sim_benchmark(lambda: None)
    t = ResultTable(
        "Figure 10(e)+(f) — swap-out / swap-in",
        ["benchmark", "pause", "capture", "swap-out total", "swap-in total"],
    )
    for name in OPENMP_NAMES:
        s, _, _ = fig10ef[name]
        t.add_row(
            name,
            fmt_time(s.timings["pause"]),
            fmt_time(s.timings["capture"]),
            fmt_time(s.timings["swapout_total"]),
            fmt_time(s.timings["swapin_total"]),
        )
    t.add_note("paper: swap-out 2.1-11.8 s, swap-in 2-14.8 s; pause > "
               "capture only for SS/SG")
    t.show()
    test_pause_vs_capture_split(fig10ef)
    test_swap_extremes(fig10ef)
    test_swapout_frees_card_memory(fig10ef)


def test_pause_vs_capture_split(fig10ef):
    for name in OPENMP_NAMES:
        s, _, _ = fig10ef[name]
        if name in ("SS", "SG"):
            assert s.timings["pause"] > s.timings["capture"], name
        else:
            # "the pause of swapping-out is much shorter than the capture"
            assert s.timings["capture"] > s.timings["pause"], name


def test_swap_extremes(fig10ef):
    outs = {n: s.timings["swapout_total"] for n, (s, _, _) in fig10ef.items()}
    ins = {n: s.timings["swapin_total"] for n, (s, _, _) in fig10ef.items()}
    assert min(outs, key=outs.get) == "MC"
    assert max(outs, key=outs.get) == "SS"
    assert max(ins, key=ins.get) == "SS"
    # Swap-in of the largest job exceeds its swap-out (reads are slower).
    assert ins["SS"] > outs["SS"] * 0.8


def test_swapout_frees_card_memory(fig10ef):
    for name in OPENMP_NAMES:
        _, before, during = fig10ef[name]
        assert before > 0
        assert during == 0, f"{name}: local store not released on swap-out"
