"""N concurrent checkpoints on one card vs the same N taken back-to-back.

The operation state machine makes overlapping captures on one daemon safe
(correlation-id demultiplexing); this benchmark shows they are also worth
it: the pause handshakes, local-store drains and BLCR streams of N offload
processes overlap, so ``snapshot_application``'s wall time sits well below
N sequential checkpoints — while every operation still completes DONE with
its own pid, snapshot path and sizes.
"""

from __future__ import annotations

import pytest

from repro.coi import OffloadBinary, OffloadFunction
from repro.hw import MB
from repro.metrics import ResultTable, fmt_time
from repro.snapify import capture_sequence, snapify_t, snapshot_application
from repro.testbed import XeonPhiServer, offload_process

NS = (1, 2, 4, 8)


def _boot(n: int):
    """A server with n independent offload processes on card 0."""
    server = XeonPhiServer()
    snaps = []

    def setup(sim):
        for i in range(n):
            binary = OffloadBinary(
                f"cc{i}.so", 8 * MB,
                {"step": OffloadFunction("step", duration=0.05)},
            )
            coiproc, _ = yield from offload_process(
                server, f"cc{i}", binary, buffers=[(16 * MB, i + 1)]
            )
            snaps.append(snapify_t(snapshot_path=f"/bench/cc{i}", coiproc=coiproc))

    server.run(setup(server.sim))
    return server, snaps


def run_concurrent(n: int):
    server, snaps = _boot(n)
    t0 = server.now

    def driver(sim):
        return (yield from snapshot_application(snaps, kind="checkpoint"))

    results = server.run(driver(server.sim))
    return server.now - t0, results, snaps


def run_sequential(n: int):
    server, snaps = _boot(n)
    t0 = server.now

    def driver(sim):
        out = []
        for snap in snaps:
            out.append((yield from capture_sequence(snap)))
        return out

    results = server.run(driver(server.sim))
    return server.now - t0, results, snaps


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for n in NS:
        seq_t, seq_r, _ = run_sequential(n)
        con_t, con_r, con_snaps = run_concurrent(n)
        out[n] = {
            "sequential": seq_t, "concurrent": con_t,
            "seq_results": seq_r, "con_results": con_r,
            "con_snaps": con_snaps,
        }
    return out


def test_concurrent_checkpoints_report(sweep, sim_benchmark):
    sim_benchmark(lambda: None)
    t = ResultTable(
        "N concurrent checkpoints on one card (simulated wall time)",
        ["N", "sequential", "concurrent", "speedup"],
    )
    for n in NS:
        row = sweep[n]
        t.add_row(
            str(n), fmt_time(row["sequential"]), fmt_time(row["concurrent"]),
            f"{row['sequential'] / row['concurrent']:.2f}x",
        )
    t.add_note("concurrent = snapshot_application (operation manager); "
               "sequential = back-to-back capture_sequence on the same topology")
    t.show()


def test_every_operation_completes_with_its_own_attribution(sweep):
    for n in NS:
        results = sweep[n]["con_results"]
        snaps = sweep[n]["con_snaps"]
        assert len(results) == n
        assert all(r.ok and r.state == "DONE" for r in results)
        assert len({r.op_id for r in results}) == n
        for r, snap in zip(results, snaps):
            assert r.pid == snap.coiproc.offload_proc.pid
            assert r.snapshot_path == snap.snapshot_path
            assert r.sizes["offload_snapshot"] > 0
            assert r.sizes["local_store"] == 16 * MB


def test_concurrency_beats_sequential(sweep):
    """Overlap pays: the pause/capture pipelines of N processes interleave,
    so concurrent wall time is strictly below sequential for every N > 1
    (the shared PCIe link bounds the speedup below N)."""
    assert sweep[1]["concurrent"] == pytest.approx(sweep[1]["sequential"], rel=0.05)
    for n in NS[1:]:
        assert sweep[n]["concurrent"] < sweep[n]["sequential"]
    assert sweep[8]["concurrent"] < 0.8 * sweep[8]["sequential"]
