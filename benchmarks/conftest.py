"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation (§7). The *simulated* latencies are the result; pytest-benchmark
additionally records the wall-clock cost of running each simulation (one
round — simulations are deterministic, repetition adds nothing).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_sim_benchmark(benchmark, fn):
    """Run ``fn`` (which builds and runs a simulation, returning results)
    exactly once under pytest-benchmark; return its result."""
    result_holder = {}

    def once():
        result_holder["result"] = fn()

    benchmark.pedantic(once, rounds=1, iterations=1, warmup_rounds=0)
    return result_holder["result"]


@pytest.fixture
def sim_benchmark(benchmark):
    def runner(fn):
        return run_sim_benchmark(benchmark, fn)

    return runner
