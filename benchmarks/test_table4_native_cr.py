"""Table 4: BLCR checkpoint/restart of a native Xeon Phi process through
each storage backend (Local RAM-FS, NFS, NFS-buffered kernel/user,
Snapify-IO), for malloc sizes 1 MB - 4 GB.

Shape criteria from §7:
* Local is fastest where feasible but IMPOSSIBLE at 4 GB (8 GB card, 4 GB
  already malloc'd by the benchmark);
* plain NFS is the worst checkpoint path (BLCR's burst of small writes);
* kernel buffering helps a lot, user-space buffering somewhat less;
* Snapify-IO checkpoints 4.7-8.8x faster than NFS at 1-4 GB;
* Snapify-IO restarts 1.4x / 2.6x / 5.9x faster than NFS at
  1 MB / 256 MB / 4 GB (buffering does not apply to restores).
"""

from __future__ import annotations

import pytest

from repro.apps.native import MallocLoopBenchmark
from repro.hw import MemoryExhausted
from repro.hw.params import GB, MB
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.testbed import XeonPhiServer

SIZES = [1 * MB, 256 * MB, 1 * GB, 4 * GB]
CKPT_METHODS = ["local", "nfs", "nfs-buffered-kernel", "nfs-buffered-user", "snapify-io"]
RESTART_METHODS = ["local", "nfs", "snapify-io"]


def run_table4():
    ckpt, restart = {}, {}
    for size in SIZES:
        for method in CKPT_METHODS:
            server = XeonPhiServer()
            bench = MallocLoopBenchmark(server, malloc_bytes=size)

            def driver(sim, method=method):
                yield from bench.start()
                yield sim.timeout(0.1)
                try:
                    elapsed = yield from bench.checkpoint(method)
                except MemoryExhausted:
                    return "OOM"
                return elapsed

            ckpt[(method, size)] = server.run(driver(server.sim))
        for method in RESTART_METHODS:
            server = XeonPhiServer()
            bench = MallocLoopBenchmark(server, malloc_bytes=size)

            def driver(sim, method=method):
                yield from bench.start()
                yield sim.timeout(0.1)
                try:
                    yield from bench.checkpoint(method)
                except MemoryExhausted:
                    return "OOM"
                bench.stop()
                yield sim.timeout(0.05)
                server.host_os.fs.drop_caches()  # restart-after-failure is cold
                _, elapsed = yield from bench.restart(method)
                return elapsed

            restart[(method, size)] = server.run(driver(server.sim))
    return ckpt, restart


@pytest.fixture(scope="module")
def table4():
    return run_table4()


def _cell(v):
    return v if v == "OOM" else fmt_time(v)


def test_table4_report(table4, sim_benchmark):
    sim_benchmark(lambda: None)
    ckpt, restart = table4

    t = ResultTable(
        "Table 4a — BLCR checkpoint time (native app on the card)",
        ["malloc", *CKPT_METHODS, "nfs/sio"],
    )
    for size in SIZES:
        vals = [ckpt[(m, size)] for m in CKPT_METHODS]
        ratio = (
            f"{ckpt[('nfs', size)] / ckpt[('snapify-io', size)]:.1f}x"
        )
        t.add_row(fmt_bytes(size), *[_cell(v) for v in vals], ratio)
    t.add_note("paper: Snapify-IO 4.7x-8.8x faster than NFS for 1-4 GB; "
               "Local infeasible at 4 GB")
    t.show()

    t = ResultTable(
        "Table 4b — BLCR restart time",
        ["malloc", *RESTART_METHODS, "nfs/sio"],
    )
    for size in SIZES:
        vals = [restart[(m, size)] for m in RESTART_METHODS]
        ratio = f"{restart[('nfs', size)] / restart[('snapify-io', size)]:.1f}x"
        t.add_row(fmt_bytes(size), *[_cell(v) for v in vals], ratio)
    t.add_note("paper: Snapify-IO 1.4x / 2.6x / 5.9x faster than NFS at "
               "1 MB / 256 MB / 4 GB")
    t.show()

    test_local_fastest_but_impossible_at_4gb(table4)
    test_plain_nfs_is_worst_checkpoint(table4)
    test_buffering_order(table4)
    test_checkpoint_speedup_bands(table4)
    test_restart_speedup_grows_with_size(table4)


def test_local_fastest_but_impossible_at_4gb(table4):
    ckpt, restart = table4
    for size in SIZES[:2]:  # plenty of card room at 1 MB / 256 MB
        others = [ckpt[(m, size)] for m in CKPT_METHODS if m != "local"]
        assert ckpt[("local", size)] < min(others)
    assert ckpt[("local", 4 * GB)] == "OOM"
    assert restart[("local", 4 * GB)] == "OOM"


def test_plain_nfs_is_worst_checkpoint(table4):
    ckpt, _ = table4
    for size in SIZES:
        vals = {m: ckpt[(m, size)] for m in CKPT_METHODS if ckpt[(m, size)] != "OOM"}
        assert max(vals, key=vals.get) == "nfs"


def test_buffering_order(table4):
    """Kernel buffering > user buffering > plain NFS, at every size."""
    ckpt, _ = table4
    for size in SIZES:
        assert (
            ckpt[("nfs-buffered-kernel", size)]
            < ckpt[("nfs-buffered-user", size)]
            < ckpt[("nfs", size)]
        )


def test_checkpoint_speedup_bands(table4):
    ckpt, _ = table4
    for size in (1 * GB, 4 * GB):
        ratio = ckpt[("nfs", size)] / ckpt[("snapify-io", size)]
        assert 3.0 < ratio < 12.0, f"{fmt_bytes(size)}: {ratio:.1f}x (paper 4.7-8.8x)"


def test_restart_speedup_grows_with_size(table4):
    _, restart = table4
    ratios = [
        restart[("nfs", s)] / restart[("snapify-io", s)]
        for s in (1 * MB, 256 * MB, 4 * GB)
    ]
    assert ratios[0] < ratios[1] < ratios[2]
    assert 1.05 < ratios[0] < 2.5, f"1 MB: {ratios[0]:.2f}x (paper 1.4x)"
    assert 1.5 < ratios[1] < 4.5, f"256 MB: {ratios[1]:.2f}x (paper 2.6x)"
    # Our NFS client models sequential readahead, which the paper's measured
    # NFS apparently did not enjoy — so our large-size restart gap is
    # smaller than their 5.9x. The monotone trend is the shape that matters.
    assert 2.5 < ratios[2] < 9.0, f"4 GB: {ratios[2]:.2f}x (paper 5.9x)"
