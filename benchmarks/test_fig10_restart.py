"""Figure 10(c): restart time breakdown for the 8 OpenMP benchmarks.

Shape criteria from §7:
* total restart is seconds-scale (paper: 3-24 s);
* the host-restart stage varies with host-snapshot size: SS and SG have the
  longest host restarts;
* the offload-restore stage strongly depends on the local-store size
  (copied back from the host to the coprocessor).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps import OPENMP_BENCHMARKS, OPENMP_NAMES, OffloadApplication
from repro.metrics import ResultTable, fmt_time
from repro.snapify import checkpoint_offload_app, restart_offload_app, snapify_t
from repro.testbed import XeonPhiServer


def run_restarts():
    results = {}
    for name in OPENMP_NAMES:
        profile = replace(OPENMP_BENCHMARKS[name], iterations=10_000)
        server = XeonPhiServer()
        app = OffloadApplication(server, profile)

        def driver(sim):
            yield from app.launch()
            yield sim.timeout(1.0)
            snap = snapify_t(snapshot_path=f"/snap/{name}", coiproc=app.coiproc)
            yield from checkpoint_offload_app(snap)
            yield sim.timeout(0.1)
            app.host_proc.terminate(code=1)  # failure
            yield sim.timeout(0.05)
            server.host_os.fs.drop_caches()  # the node rebooted
            result = yield from restart_offload_app(
                server.host_os, f"/snap/{name}", server.engine(0)
            )
            return result.snap

        results[name] = server.run(driver(server.sim))
    return results


@pytest.fixture(scope="module")
def fig10c():
    return run_restarts()


def test_fig10c_report(fig10c, sim_benchmark):
    sim_benchmark(lambda: None)
    t = ResultTable(
        "Figure 10(c) — restart time breakdown",
        ["benchmark", "host restart", "offload restore", "total"],
    )
    for name in OPENMP_NAMES:
        s = fig10c[name]
        t.add_row(
            name,
            fmt_time(s.timings["host_restart"]),
            fmt_time(s.timings["offload_restore"]),
            fmt_time(s.timings["restart_total"]),
        )
    t.add_note("paper: totals 3-24 s; host restart longest for SS/SG; "
               "offload restore tracks local-store size")
    t.show()
    test_ss_sg_have_longest_host_restarts(fig10c)
    test_offload_restore_tracks_local_store(fig10c)
    test_total_ordering(fig10c)


def test_ss_sg_have_longest_host_restarts(fig10c):
    host_t = {n: s.timings["host_restart"] for n, s in fig10c.items()}
    assert set(sorted(host_t, key=host_t.get, reverse=True)[:2]) == {"SS", "SG"}


def test_offload_restore_tracks_local_store(fig10c):
    restore_t = {n: s.timings["offload_restore"] for n, s in fig10c.items()}
    ls = {n: OPENMP_BENCHMARKS[n].local_store for n in OPENMP_NAMES}
    assert max(restore_t, key=restore_t.get) == max(ls, key=ls.get) == "SS"
    assert min(restore_t, key=restore_t.get) == min(ls, key=ls.get) == "MC"


def test_total_ordering(fig10c):
    totals = {n: s.timings["restart_total"] for n, s in fig10c.items()}
    assert min(totals, key=totals.get) == "MC"
    assert max(totals, key=totals.get) in ("SS", "SG")
    assert totals["SS"] > 4 * totals["MC"]
