#!/usr/bin/env python
"""Kernel performance gate: measure hot-path throughput and fail on regression.

Runs the kernel microbenchmark workloads (event dispatch, channel ping-pong
with and without back-pressure, timer storm, and a full snapshot cycle),
writes a machine-readable ``BENCH_kernel.json``, and — when given a baseline
— fails with exit code 1 if any workload's throughput drops below
``threshold`` times the baseline.

Raw ops/sec depends on the machine, so scores are *normalized* against a
fixed pure-Python calibration loop measured in the same process: the gate
compares ``ops_per_sec / calibration_ops_per_sec``, which is stable across
hosts of different speeds (e.g. a laptop baseline vs. a CI runner).

Usage::

    python benchmarks/perfgate.py --out BENCH_kernel.json \
        --baseline benchmarks/baseline.json --threshold 0.6

    # refresh the checked-in baseline after an intentional kernel change
    python benchmarks/perfgate.py --update-baseline benchmarks/baseline.json
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.sim import Channel, Simulator  # noqa: E402

SCHEMA = "repro-kernel-bench/1"


# ---------------------------------------------------------------------------
# Workloads. Each returns the number of "operations" performed; the runner
# times it. Sizes aim for ~0.1 s per run on a development machine.
# ---------------------------------------------------------------------------


def wl_event_dispatch(n=50_000):
    """Schedule-and-wait on n fresh events: pure heap + resume cost."""
    sim = Simulator()

    def worker(s):
        for _ in range(n):
            ev = s.event()
            s.schedule(0.0, ev.succeed, None)
            yield ev

    sim.spawn(worker(sim))
    sim.run()
    return n


def wl_ping_pong(n=20_000, capacity=None):
    """n round trips over two channels: the canonical send/recv pair cost."""
    sim = Simulator()
    a = Channel(sim, "a", capacity=capacity)
    b = Channel(sim, "b", capacity=capacity)

    def ping(s):
        for i in range(n):
            yield a.send(i)
            yield b.recv()

    def pong(s):
        for _ in range(n):
            v = yield a.recv()
            yield b.send(v)

    sim.spawn(ping(sim))
    sim.spawn(pong(sim))
    sim.run()
    return n


def wl_ping_pong_bounded(n=20_000):
    return wl_ping_pong(n, capacity=1)


def wl_timer_storm(n_threads=2_000, ticks=20):
    """Many threads sleeping on staggered timers: heap churn under load."""
    sim = Simulator()

    def worker(s, delay):
        for _ in range(ticks):
            yield s.timeout(delay)

    for i in range(n_threads):
        sim.spawn(worker(sim, 0.1 + i * 1e-4))
    sim.run()
    return n_threads * ticks


def wl_snapshot_cycle():
    """A full Fig-10-style cycle: boot, offload app, migrate, finish.

    Exercises every layer above the kernel (OS, SCIF, COI, Snapify); the
    operation count is the number of scheduled kernel events, so the score
    is directly comparable to the synthetic workloads.
    """
    from dataclasses import replace

    from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
    from repro.snapify import MIGRATE, snapify_command
    from repro.testbed import XeonPhiServer

    sim = Simulator()
    server = XeonPhiServer(sim=sim)
    profile = replace(OPENMP_BENCHMARKS["MC"], iterations=30)
    app = OffloadApplication(server, profile)

    def driver(s):
        yield from app.launch()
        yield s.timeout(0.3)
        done = snapify_command(app.host_proc, MIGRATE, engine=server.engine(1))
        yield done
        yield app.host_proc.main_thread.done

    server.run(driver(sim))
    assert app.verify(), "snapshot cycle corrupted the application"
    return next(sim._seq)  # total kernel events scheduled


def wl_concurrent_checkpoints(n_procs=4):
    """N offload processes on one card checkpointed concurrently through
    the operation manager: pause/capture pipelines overlapping on one
    daemon, completions demultiplexed by correlation id. Exercises the
    ops-layer hot path (state transitions, endpoint demux, wait_all) on
    top of the full stack; ops = kernel events, like wl_snapshot_cycle.
    """
    from repro.coi import OffloadBinary, OffloadFunction
    from repro.hw import MB
    from repro.snapify import snapify_t, snapshot_application
    from repro.testbed import XeonPhiServer, offload_process

    sim = Simulator()
    server = XeonPhiServer(sim=sim)
    snaps = []

    def setup(s):
        for i in range(n_procs):
            binary = OffloadBinary(
                f"cc{i}.so", 8 * MB,
                {"step": OffloadFunction("step", duration=0.05)},
            )
            coiproc, _ = yield from offload_process(
                server, f"cc{i}", binary, buffers=[(4 * MB, i + 1)]
            )
            snaps.append(snapify_t(snapshot_path=f"/bench/cc{i}", coiproc=coiproc))

    server.run(setup(sim))

    def driver(s):
        return (yield from snapshot_application(snaps, kind="checkpoint"))

    results = server.run(driver(sim))
    assert all(r.ok for r in results), "concurrent checkpoint failed"
    return next(sim._seq)  # total kernel events scheduled


def wl_remote_checkpoint(n_files=6):
    """Fault-free resilient transfers off a card through TransferManager:
    proves the retry/fallback machinery adds no overhead when nothing
    fails (every file must go first-try over Snapify-IO). ops = kernel
    events, like wl_snapshot_cycle.
    """
    from repro.hw import MB
    from repro.snapify import transfer_snapshot
    from repro.testbed import XeonPhiServer

    sim = Simulator()
    server = XeonPhiServer(sim=sim)

    def driver(s):
        src_os = server.phi_os(0)
        yield from src_os.fs.write("/bench/src", 64 * MB, payload=["rc"])
        results = []
        for i in range(n_files):
            res = yield from transfer_snapshot(
                src_os, 0, "/bench/src", f"/bench/dst{i}", kind="remote-checkpoint"
            )
            results.append(res)
        return results

    results = server.run(driver(sim))
    assert all(
        r.ok and r.channel == "snapifyio" and r.attempts == 1 for r in results
    ), "fault-free transfer retried or degraded"
    return next(sim._seq)  # total kernel events scheduled


def wl_incremental_checkpoint(n_epochs=5, buffer_mb=64):
    """Incremental capture economics: a ~5%-dirty delta epoch must cost
    well under a full capture of the same process.

    Runs one full (classic, Snapify-IO) capture, then an incremental base
    plus ``n_epochs`` delta captures into the memory tier, dirtying ~5% of
    every region between epochs. The gate asserts the mean delta epoch's
    *capture cost* (the post-drain phases: page walk + replication or
    transfer; the pause phase is a fixed protocol cost identical on both
    paths) is >= 3x cheaper in simulated seconds than the full capture —
    the whole point of dirty-page tracking — and that deltas ship a small
    fraction of the logical image. ops = kernel events, like
    wl_snapshot_cycle; the simulated costs and speedup ride in ``extras``.
    """
    from repro.coi import OffloadBinary, OffloadFunction
    from repro.hw import MB
    from repro.snapify import snapify_t
    from repro.snapify.ops import capture_sequence
    from repro.snapify_io.memtier import MemoryTier
    from repro.testbed import XeonPhiServer, offload_process

    sim = Simulator()
    server = XeonPhiServer(sim=sim)
    binary = OffloadBinary(
        "inc.so", 8 * MB, {"step": OffloadFunction("step", duration=0.05)}
    )

    def setup(s):
        coiproc, _ = yield from offload_process(
            server, "inc", binary, buffers=[(buffer_mb * MB, 1)]
        )
        return coiproc

    coiproc = server.run(setup(sim))
    MemoryTier.of(sim).register_server(server)

    def capture_cost(result):
        # The phases dirty tracking changes: everything after the drain
        # (page walk + replicate/transfer). Pausing is a fixed protocol
        # cost identical on both paths.
        return sum(
            result.phases.get(p, 0.0)
            for p in ("capturing", "capturing_delta", "replicating", "transferring")
        )

    def driver(s):
        snap_full = snapify_t("/bench/inc_full", coiproc=coiproc)
        full_cost = capture_cost((yield from capture_sequence(snap_full)))
        snap = snapify_t("/bench/inc_tier", coiproc=coiproc, incremental=True)
        base_cost = capture_cost((yield from capture_sequence(snap)))
        delta_cost, frac = [], []
        for epoch in range(n_epochs):
            for region in coiproc.offload_proc.regions.values():
                span = max(1, region.size // 20)  # ~5% of the region
                offset = (epoch * 7919 * 4096) % max(1, region.size - span)
                region.write(offset, span)
            result = yield from capture_sequence(snap)
            delta_cost.append(capture_cost(result))
            frac.append(result.delta_bytes / result.logical_bytes)
        return full_cost, base_cost, delta_cost, frac

    full_cost, base_cost, delta_cost, frac = server.run(driver(sim))
    mean_delta = sum(delta_cost) / len(delta_cost)
    speedup = full_cost / mean_delta
    assert speedup >= 3.0, (
        f"5%-dirty delta capture only {speedup:.2f}x cheaper than full "
        f"({mean_delta:.4f}s vs {full_cost:.4f}s simulated)"
    )
    assert max(frac) < 0.5, f"delta shipped {max(frac):.0%} of the logical image"
    wl_incremental_checkpoint.extras = {
        "full_capture_sim_s": round(full_cost, 6),
        "base_capture_sim_s": round(base_cost, 6),
        "mean_delta_sim_s": round(mean_delta, 6),
        "delta_speedup_x": round(speedup, 2),
        "mean_dirty_frac": round(sum(frac) / len(frac), 4),
    }
    return next(sim._seq)  # total kernel events scheduled


def wl_fleet_sweep(topology="rack32", ops_per_card=4):
    """The fleet control plane at scale: a rack of cards driven through one
    admission-controlled FleetManager (mixed checkpoint/swap/migrate load,
    cards * ops_per_card keyed operations). ops = kernel events, like
    wl_snapshot_cycle; the p99 queue wait (simulated seconds a ticket sat
    in the priority queues) rides along in ``extras`` for the CI summary.
    """
    from repro.snapify.fleet import FleetManager, fleet_sweep
    from repro.testbed import XeonPhiFleet

    fleet = XeonPhiFleet(topology)
    manager = FleetManager(fleet, max_in_flight=16, per_card_limit=2)

    def driver():
        return (yield from fleet_sweep(fleet, manager, ops_per_card=ops_per_card))

    result = fleet.run(driver())
    assert result.ok, f"fleet sweep failed: {result.summary()}"
    assert manager.hwm_in_flight <= manager.max_in_flight, "admission cap breached"
    waits = sorted(t.queue_wait for t in result.tickets.values()
                   if t.queue_wait is not None)
    p99 = waits[min(len(waits) - 1, int(len(waits) * 0.99))] if waits else 0.0
    wl_fleet_sweep.extras = {
        "fleet_ops": len(result),
        "p99_queue_wait_sim_s": round(p99, 6),
    }
    return next(fleet.sim._seq)  # total kernel events scheduled


def wl_telemetry_overhead(topology="rack8", ops_per_card=4, interval=0.05):
    """The telemetry tax: the same fleet sweep with the sampler off and on.

    Runs ``wl_fleet_sweep``'s workload twice — stock, then with the
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` installed at a
    production interval — and asserts the enabled sampler inflates the
    kernel event count by < 5%. The score is the telemetry-on run's event
    count, so a chatty sampler shows up both in the assertion and as a
    throughput regression.
    """
    from repro.obs.timeseries import TelemetryConfig, TimeSeriesRecorder
    from repro.snapify.fleet import FleetManager, fleet_sweep
    from repro.testbed import XeonPhiFleet

    def sweep(telemetry):
        fleet = XeonPhiFleet(topology)
        recorder = None
        if telemetry:
            recorder = TimeSeriesRecorder.install(
                fleet.sim, TelemetryConfig(interval=interval)
            )
        manager = FleetManager(fleet, max_in_flight=16, per_card_limit=2)

        def driver():
            result = yield from fleet_sweep(fleet, manager,
                                            ops_per_card=ops_per_card)
            if recorder is not None:
                recorder.stop()
            return result

        result = fleet.run(driver())
        assert result.ok, f"fleet sweep failed: {result.summary()}"
        return next(fleet.sim._seq)

    events_off = sweep(telemetry=False)
    events_on = sweep(telemetry=True)
    overhead = (events_on - events_off) / events_off
    assert overhead < 0.05, (
        f"telemetry sampler overhead {overhead:.1%} >= 5% "
        f"({events_on} vs {events_off} kernel events)"
    )
    wl_telemetry_overhead.extras = {
        "events_off": events_off,
        "events_on": events_on,
        "overhead_pct": round(overhead * 100, 3),
    }
    return events_on


def wl_plugin_dispatch(iterations=20):
    """The checkpoint-content plugin tax: the same fault-free checkpoint
    cycle with the builtins-only registry and with every standard content
    plugin registered (the app owns none of the plugged resources, so the
    extras all decline). The registry walk, the agent's drain phase, and
    the COI metadata image must together inflate the kernel event count by
    < 2%. The score is the plugins-on run's event count, so dispatch bloat
    shows up both in the assertion and as a throughput regression.
    """
    from dataclasses import replace

    from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
    from repro.blcr.plugins import register_standard_plugins
    from repro.snapify import checkpoint_offload_app, snapify_t
    from repro.testbed import XeonPhiServer

    def cycle(with_plugins):
        sim = Simulator()
        server = XeonPhiServer(sim=sim)
        if with_plugins:
            register_standard_plugins(server.phi_os(0))
            register_standard_plugins(server.phi_os(1))
        profile = replace(OPENMP_BENCHMARKS["MC"], iterations=iterations)
        app = OffloadApplication(server, profile)

        def driver(s):
            yield from app.launch()
            yield s.timeout(0.3)
            snap = snapify_t("/bench/plug", coiproc=app.coiproc)
            yield from checkpoint_offload_app(snap)
            yield app.host_proc.main_thread.done

        server.run(driver(sim))
        assert app.verify(), "plugin dispatch run corrupted the application"
        return next(sim._seq)

    events_off = cycle(with_plugins=False)
    events_on = cycle(with_plugins=True)
    overhead = (events_on - events_off) / events_off
    assert overhead < 0.02, (
        f"plugin dispatch overhead {overhead:.2%} >= 2% on the fault-free "
        f"checkpoint path ({events_on} vs {events_off} kernel events)"
    )
    wl_plugin_dispatch.extras = {
        "events_off": events_off,
        "events_on": events_on,
        "overhead_pct": round(overhead * 100, 3),
    }
    return events_on


def wl_replication():
    """Useful-work throughput of a replicated (R=2) job surviving a card
    failure: the faulted replication arm of the resilience study. Asserts
    the failure costs zero restarts and that the team-message ledger and
    dedup accounting balance. ops = kernel events, like wl_snapshot_cycle;
    the study's headline numbers ride in ``extras`` for the CI summary.
    """
    from repro.sched.study import run_mode

    clean = run_mode("replication", faulted=False)
    fault = run_mode("replication", faulted=True,
                     fault_at=0.6 * clean["elapsed"])
    assert fault["verified"], "replicated job finished with a bad checksum"
    assert fault["restarts"] == 0, "replication needed a restart"
    assert fault["drops"] == 1, f"expected one replica drop, got {fault['drops']}"
    assert fault["ledger_balanced"], "team-message copy ledger out of balance"
    assert fault["duplicate_deliveries"] == 0, "a logical message delivered twice"
    slowdown = fault["elapsed"] / clean["elapsed"]
    assert slowdown < 1.1, f"card failure cost {slowdown:.2f}x under replication"
    wl_replication.extras = {
        "clean_sim_s": round(clean["elapsed"], 6),
        "faulted_sim_s": round(fault["elapsed"], 6),
        "slowdown_x": round(slowdown, 3),
        "useful_iterations": fault["iterations"],
        "executed_iterations": fault["executed"],
    }
    return fault["events"]


WORKLOADS = {
    "event_dispatch": wl_event_dispatch,
    "ping_pong": wl_ping_pong,
    "ping_pong_bounded": wl_ping_pong_bounded,
    "timer_storm": wl_timer_storm,
    "snapshot_cycle": wl_snapshot_cycle,
    "concurrent_checkpoints": wl_concurrent_checkpoints,
    "remote_checkpoint": wl_remote_checkpoint,
    "incremental_checkpoint": wl_incremental_checkpoint,
    "fleet_sweep": wl_fleet_sweep,
    "telemetry_overhead": wl_telemetry_overhead,
    "plugin_dispatch": wl_plugin_dispatch,
    "replication": wl_replication,
}


def calibrate(n=400_000):
    """Fixed pure-Python mix (calls, dict, list) to measure machine speed."""
    import heapq

    def probe(i, acc):
        return acc + (i & 7)

    t0 = time.perf_counter()
    heap, d, acc = [], {}, 0
    for i in range(n):
        acc = probe(i, acc)
        d[i & 255] = i
        heapq.heappush(heap, (i ^ 0x2A, i))
        if i & 1:
            heapq.heappop(heap)
    dt = time.perf_counter() - t0
    assert acc and d and heap
    return n / dt


# ---------------------------------------------------------------------------
# Runner / gate
# ---------------------------------------------------------------------------


def run_benchmarks(repeat=3):
    results = {}
    cal = max(calibrate() for _ in range(repeat))
    for name, fn in WORKLOADS.items():
        best_ops_per_sec = 0.0
        ops = 0
        fn()  # warmup
        for _ in range(repeat):
            t0 = time.perf_counter()
            ops = fn()
            dt = time.perf_counter() - t0
            best_ops_per_sec = max(best_ops_per_sec, ops / dt)
        results[name] = {
            "ops": ops,
            "ops_per_sec": round(best_ops_per_sec, 1),
            "normalized": round(best_ops_per_sec / cal, 6),
        }
        extras = getattr(fn, "extras", None)
        if extras:
            results[name].update(extras)
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_ops_per_sec": round(cal, 1),
        "results": results,
    }


def check_against_baseline(report, baseline, threshold):
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    for name, base in baseline.get("results", {}).items():
        now = report["results"].get(name)
        if now is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        floor = base["normalized"] * threshold
        if now["normalized"] < floor:
            failures.append(
                f"{name}: normalized score {now['normalized']:.4f} < "
                f"{floor:.4f} ({threshold:.2f}x of baseline {base['normalized']:.4f})"
            )
    return failures


def markdown_summary(report, failures=None, threshold=None):
    """The report as a GitHub-flavored markdown score table."""
    lines = [
        "### Kernel performance gate",
        "",
        "| workload | ops/s | normalized | notes |",
        "| --- | ---: | ---: | --- |",
    ]
    for name, res in report["results"].items():
        notes = ", ".join(
            f"{k}={v}" for k, v in res.items()
            if k not in ("ops", "ops_per_sec", "normalized")
        )
        lines.append(
            f"| {name} | {res['ops_per_sec']:,.0f} | "
            f"{res['normalized']:.4f} | {notes} |"
        )
    lines.append(
        f"| _calibration_ | {report['calibration_ops_per_sec']:,.0f} | 1.0000 | |"
    )
    lines.append("")
    if failures:
        lines.append(f"**PERFGATE FAIL** (threshold {threshold:.2f}x of baseline):")
        lines.extend(f"- {f}" for f in failures)
    elif threshold is not None:
        lines.append(f"PERFGATE OK (threshold {threshold:.2f}x of baseline)")
    lines.append("")
    return "\n".join(lines)


def emit_summary(markdown):
    """Append to ``$GITHUB_STEP_SUMMARY`` when set, else print to stdout."""
    import os

    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a") as f:
            f.write(markdown + "\n")
        print(f"wrote score table to step summary ({path})")
    else:
        print(markdown)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_kernel.json", help="report output path")
    ap.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.6,
        help="fail if normalized score < threshold * baseline (default 0.6)",
    )
    ap.add_argument("--repeat", type=int, default=3, help="repetitions, best-of (default 3)")
    ap.add_argument(
        "--update-baseline",
        metavar="PATH",
        default=None,
        help="write the report to PATH as the new baseline and exit",
    )
    args = ap.parse_args(argv)

    if args.repeat < 1:
        ap.error(f"--repeat must be >= 1 (got {args.repeat})")
    if args.baseline and not Path(args.baseline).is_file():
        ap.error(f"baseline file not found: {args.baseline}")

    report = run_benchmarks(repeat=args.repeat)
    for name, res in report["results"].items():
        score = f"{res['ops_per_sec']:>14,.0f}"
        print(f"  {name:20s} {score} ops/s   normalized {res['normalized']:.4f}")
    print(f"  {'calibration':20s} {report['calibration_ops_per_sec']:>14,.0f} ops/s")

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.update_baseline:
        Path(args.update_baseline).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote new baseline {args.update_baseline}")
        return 0

    failures = []
    threshold = None
    if args.baseline:
        threshold = args.threshold
        baseline = json.loads(Path(args.baseline).read_text())
        failures = check_against_baseline(report, baseline, args.threshold)
    emit_summary(markdown_summary(report, failures, threshold))
    if failures:
        print("PERFGATE FAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    if args.baseline:
        print(f"PERFGATE OK (threshold {args.threshold:.2f}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
