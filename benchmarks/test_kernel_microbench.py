"""Microbenchmarks for the simulation-kernel hot path.

Unlike the figure/table benchmarks (whose *result* is a simulated latency),
these measure the wall-clock cost of the kernel itself: event dispatch,
channel ping-pong (the innermost operation of every offload call), timer
storms, and a full Fig-10-style snapshot cycle through all the layers.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_microbench.py --benchmark-only

The enforced regression gate lives in ``benchmarks/perfgate.py`` (same
workloads, normalized scores, checked-in baseline); these tests exist for
local profiling and for the CI smoke job. Alongside the timings, each
workload asserts its scheduler digest is reproducible — speed must never
come at the cost of determinism.
"""

from repro.sim import Channel, Simulator

from benchmarks.perfgate import (
    wl_event_dispatch,
    wl_ping_pong,
    wl_ping_pong_bounded,
    wl_snapshot_cycle,
    wl_timer_storm,
)

# Smaller sizes than perfgate: pytest-benchmark runs several rounds and the
# smoke job must stay fast.
N_DISPATCH = 10_000
N_PING_PONG = 5_000
N_TIMER_THREADS = 500


def _bench(benchmark, fn, *args):
    return benchmark.pedantic(fn, args=args, rounds=3, iterations=1, warmup_rounds=1)


def test_event_dispatch(benchmark):
    assert _bench(benchmark, wl_event_dispatch, N_DISPATCH) == N_DISPATCH


def test_channel_ping_pong(benchmark):
    assert _bench(benchmark, wl_ping_pong, N_PING_PONG) == N_PING_PONG


def test_channel_ping_pong_bounded(benchmark):
    assert _bench(benchmark, wl_ping_pong_bounded, N_PING_PONG) == N_PING_PONG


def test_timer_storm(benchmark):
    assert _bench(benchmark, wl_timer_storm, N_TIMER_THREADS) == N_TIMER_THREADS * 20


def test_snapshot_cycle(benchmark):
    events = _bench(benchmark, wl_snapshot_cycle)
    assert events > 1_000  # a full cycle schedules thousands of kernel events


def test_ping_pong_schedule_is_deterministic():
    """The optimized send/recv fast paths must not perturb scheduling: the
    same workload draws the same number of heap entries every run."""

    def digest():
        sim = Simulator()
        a = Channel(sim, "a")
        b = Channel(sim, "b")

        def ping(s):
            for i in range(200):
                yield a.send(i)
                yield b.recv()

        def pong(s):
            for _ in range(200):
                v = yield a.recv()
                yield b.send(v)

        sim.spawn(ping(sim))
        sim.spawn(pong(sim))
        sim.run()
        return (sim.now, next(sim._seq), [t.done.ok for t in sim.threads])

    assert digest() == digest()
