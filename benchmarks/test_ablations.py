"""Ablations of the design choices DESIGN.md calls out.

1. Snapify-IO staging-buffer size (the paper fixes 4 MB "to balance between
   the requirement of minimizing memory footprint and the need of shorter
   transfer latency") — sweep 256 KB to 64 MB.
2. Asynchronous host-side flush (why card->host writes outrun reads).
3. Drain-before-capture: without the pause protocol, the SCIF channels are
   frequently non-empty at the capture instant — the §3 consistency hazard.
4. On-the-fly restore vs staging the context in card RAM-FS first: staging
   doubles the card-memory bill and OOMs for large processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace


from repro.apps import OPENMP_BENCHMARKS, OffloadApplication
from repro.blcr import cr_checkpoint, cr_restart
from repro.calibration import paper_testbed
from repro.hw import GB, KB, MB, MemoryExhausted
from repro.metrics import ResultTable, fmt_bytes, fmt_time
from repro.osim import RegularFileFD
from repro.snapify import snapify_pause, snapify_resume, snapify_t
from repro.snapify_io import snapifyio_open
from repro.testbed import XeonPhiServer


# ---------------------------------------------------------------------------
# 1. staging buffer size
# ---------------------------------------------------------------------------


def run_buffer_sweep():
    times = {}
    for buf in [256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB]:
        params = paper_testbed()
        params = params.with_(
            snapify_io=dataclasses.replace(params.snapify_io, buffer_size=buf)
        )
        server = XeonPhiServer(params=params)

        def driver(sim):
            yield from server.phi_os(0).fs.write("/f", 256 * MB)
            t0 = sim.now
            fd = yield from snapifyio_open(server.phi_os(0), 0, "/out", "w")
            yield from server.phi_os(0).fs.read("/f")
            yield from fd.write(256 * MB)
            yield from fd.finish()
            return sim.now - t0

        times[buf] = server.run(driver(server.sim))
    return times


def test_buffer_size_ablation(sim_benchmark):
    times = sim_benchmark(run_buffer_sweep)
    t = ResultTable(
        "Ablation — Snapify-IO staging buffer size (256 MB transfer)",
        ["buffer", "transfer time", "card memory pinned"],
    )
    for buf, elapsed in times.items():
        t.add_row(fmt_bytes(buf), fmt_time(elapsed), fmt_bytes(buf))
    t.add_note("the paper picks 4 MB: latency flattens past a few MB while "
               "pinned card memory keeps growing")
    t.show()
    sizes = sorted(times)
    # Tiny buffers pay per-chunk round trips; big buffers stop helping.
    assert times[sizes[0]] > times[4 * MB]
    gain_past_4mb = times[4 * MB] - times[sizes[-1]]
    assert gain_past_4mb < 0.25 * times[4 * MB]


# ---------------------------------------------------------------------------
# 2. async host flush
# ---------------------------------------------------------------------------


def run_flush_ablation():
    out = {}
    for async_flush in (True, False):
        params = paper_testbed()
        params = params.with_(
            snapify_io=dataclasses.replace(params.snapify_io, async_flush=async_flush)
        )
        server = XeonPhiServer(params=params)

        def driver(sim):
            yield from server.phi_os(0).fs.write("/f", 512 * MB)
            t0 = sim.now
            fd = yield from snapifyio_open(server.phi_os(0), 0, "/out", "w")
            yield from server.phi_os(0).fs.read("/f")
            yield from fd.write(512 * MB)
            yield from fd.finish()
            return sim.now - t0

        out[async_flush] = server.run(driver(server.sim))
    return out


def test_async_flush_ablation(sim_benchmark):
    out = sim_benchmark(run_flush_ablation)
    t = ResultTable(
        "Ablation — asynchronous host-side flush (512 MB card->host write)",
        ["flush", "time"],
    )
    t.add_row("async (paper)", fmt_time(out[True]))
    t.add_row("synchronous", fmt_time(out[False]))
    t.show()
    assert out[True] < out[False]


# ---------------------------------------------------------------------------
# 3. drain-before-capture
# ---------------------------------------------------------------------------


def run_drain_ablation():
    profile = replace(OPENMP_BENCHMARKS["MD"], iterations=10_000)
    server = XeonPhiServer()
    app = OffloadApplication(server, profile)
    samples = {"undrained": 0, "undrained_dirty": 0, "drained": 0, "drained_dirty": 0}
    link = server.node.phis[0].link

    def unsafe() -> bool:
        """Would a snapshot taken *now* see communication state that no
        process image contains? True if any channel holds an undelivered
        message or a transfer is on the PCIe wire."""
        return (
            not app.coiproc.channels_empty()
            or link.h2d.busy
            or link.d2h.busy
        )

    def driver(sim):
        yield from app.launch()
        yield sim.timeout(0.5)
        # Sample the communication state at arbitrary instants WITHOUT pausing.
        for i in range(60):
            yield sim.timeout(0.00037)  # off-phase with the iteration rhythm
            samples["undrained"] += 1
            if unsafe():
                samples["undrained_dirty"] += 1
        # Now sample under the pause protocol.
        for i in range(5):
            snap = snapify_t(snapshot_path=f"/abl/{i}", coiproc=app.coiproc)
            yield from snapify_pause(snap)
            samples["drained"] += 1
            if unsafe():
                samples["drained_dirty"] += 1
            yield from snapify_resume(snap)
            yield sim.timeout(0.01)

    server.run(driver(server.sim))
    return samples


def test_drain_ablation(sim_benchmark):
    samples = sim_benchmark(run_drain_ablation)
    t = ResultTable(
        "Ablation — drain-before-capture (channel emptiness at the capture instant)",
        ["mode", "samples", "channels non-empty"],
    )
    t.add_row("no pause (broken)", samples["undrained"], samples["undrained_dirty"])
    t.add_row("snapify_pause (paper)", samples["drained"], samples["drained_dirty"])
    t.add_note("a snapshot taken at a non-empty instant loses in-flight "
               "messages: the §3 consistency hazard")
    t.show()
    assert samples["undrained_dirty"] > 0
    assert samples["drained_dirty"] == 0


# ---------------------------------------------------------------------------
# 4. on-the-fly vs staged restore
# ---------------------------------------------------------------------------


def run_staged_restore(heap_bytes: int, staged: bool):
    """Checkpoint a native card process, then restore it with/without
    staging the context file in card RAM-FS. Returns (peak_ramfs, outcome)."""
    server = XeonPhiServer()
    phi = server.phi_os(0)

    def driver(sim):
        def spin(proc):
            while True:
                yield proc.sim.timeout(1)

        proc = yield from phi.spawn_process("native", image_size=2 * MB,
                                            main_factory=spin)
        proc.map_region("heap", heap_bytes)
        fd = yield from snapifyio_open(phi, 0, "/ctx", "w")
        yield from cr_checkpoint(proc, fd)
        yield from fd.finish()
        proc.terminate()
        yield sim.timeout(0.01)
        base_ramfs = phi.memory.by_category.get("ramfs", 0)
        try:
            if staged:
                # Copy the whole context into card RAM-FS first...
                ctx_file = server.host_os.fs.stat("/ctx")
                rfd = yield from snapifyio_open(phi, 0, "/ctx", "r")
                records = []
                while True:
                    rec = yield from rfd.read(4 * MB)
                    if rec is None:
                        break
                    records.append(rec)
                rfd.close()
                yield from phi.fs.write("/tmp/staged_ctx", ctx_file.size,
                                        payload=records)
                peak = phi.memory.by_category.get("ramfs", 0)
                lfd = RegularFileFD(server.sim, phi.fs, "/tmp/staged_ctx", "r")
                yield from cr_restart(phi, lfd)
                lfd.close()
                phi.fs.unlink("/tmp/staged_ctx")
            else:
                rfd = yield from snapifyio_open(phi, 0, "/ctx", "r")
                yield from cr_restart(phi, rfd)
                rfd.close()
                peak = phi.memory.by_category.get("ramfs", 0)
            return peak - base_ramfs, "ok"
        except MemoryExhausted:
            return None, "OOM"

    return server.run(driver(server.sim))


def test_staged_restore_ablation(sim_benchmark):
    def run_all():
        return {
            (fmt_bytes(heap), mode): run_staged_restore(heap, mode == "staged")
            for heap in (1 * GB, 5 * GB)
            for mode in ("on-the-fly", "staged")
        }

    results = sim_benchmark(run_all)
    t = ResultTable(
        "Ablation — on-the-fly restore (Snapify-IO) vs staging in card RAM-FS",
        ["process heap", "mode", "extra card memory", "outcome"],
    )
    for (heap, mode), (extra, outcome) in results.items():
        t.add_row(heap, mode, "-" if extra is None else fmt_bytes(extra), outcome)
    t.add_note("staging needs snapshot-sized RAM-FS space on top of the "
               "process itself: big processes cannot be restored that way")
    t.show()
    assert results[(fmt_bytes(1 * GB), "on-the-fly")][1] == "ok"
    assert results[(fmt_bytes(1 * GB), "staged")][1] == "ok"
    assert results[(fmt_bytes(5 * GB), "on-the-fly")][1] == "ok"
    assert results[(fmt_bytes(5 * GB), "staged")][1] == "OOM"
    # Staging pins snapshot-sized card memory; on-the-fly pins ~nothing.
    assert results[(fmt_bytes(1 * GB), "staged")][0] > 1 * GB
    assert results[(fmt_bytes(1 * GB), "on-the-fly")][0] < 64 * MB
